package nettransport

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"github.com/eventual-agreement/eba/internal/chaos"
	"github.com/eventual-agreement/eba/internal/failures"
	"github.com/eventual-agreement/eba/internal/sim"
	"github.com/eventual-agreement/eba/internal/telemetry"
	"github.com/eventual-agreement/eba/internal/types"
)

// Telemetry handles for the resilient runtime. Per-link frame counters
// are cached on each sendLink at construction so the write path never
// takes the registry lock; the rarer receive-side and chaos events
// look their series up on demand.
//
// eba_net_messages_required_total / _delivered_total mirror the
// failures.Observation bookkeeping from independent call sites: the
// required−delivered difference must equal the reconstructed pattern's
// omission count, which the e2e telemetry test asserts.
var (
	mNetRequired  = telemetry.Default().Counter("eba_net_messages_required_total")
	mNetDelivered = telemetry.Default().Counter("eba_net_messages_delivered_total")
	// mNetSlack records, per processor per round, how much of the
	// receive window was left when the round's frames were accounted
	// for. Buckets at and below zero are rounds that hit the deadline
	// and wrote the stragglers off as omissions.
	mNetSlack = telemetry.Default().Histogram("eba_net_deadline_slack_seconds",
		[]float64{-0.5, -0.05, 0, 0.05, 0.1, 0.25, 0.5, 1, 5})
)

func linkLabel(from, to types.ProcID) telemetry.Label {
	return telemetry.L("link", fmt.Sprintf("%d->%d", from, to))
}

func frameCounter(from, to types.ProcID, fate string) *telemetry.Counter {
	return telemetry.Default().Counter("eba_net_frames_total", linkLabel(from, to), telemetry.L("fate", fate))
}

// Default timing parameters for the resilient engine.
const (
	// DefaultDeadline is the per-round receive deadline: how long a
	// processor waits for a peer's round-r frame before treating the
	// message as omitted.
	DefaultDeadline = 750 * time.Millisecond
	// DefaultBackoffBase is the initial reconnect backoff.
	DefaultBackoffBase = 2 * time.Millisecond
	// DefaultBackoffMax caps the exponential reconnect backoff.
	DefaultBackoffMax = 250 * time.Millisecond
)

// Options configures RunResilient.
type Options struct {
	// Mode is the failure mode the run is attributed to. Defaults to
	// the plan's mode when a chaos plan is set.
	Mode failures.Mode
	// Horizon is the number of rounds to run. Defaults to the plan's
	// horizon when a chaos plan is set.
	Horizon int
	// Deadline is the per-round receive deadline (DefaultDeadline if
	// zero). A frame that misses it is an omission by its sender —
	// the deployed-system reading of the paper's round clock.
	Deadline time.Duration
	// Plan injects seeded network faults; nil runs chaos-free (any
	// genuine network pathology still degrades to omissions).
	Plan *chaos.Plan
	// BackoffBase and BackoffMax shape the reconnect backoff
	// (exponential with jitter) used when a connection dies in
	// omission mode.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Observation, when non-nil, is the sink for message fates; the
	// engine allocates one internally otherwise. The reconstructed
	// pattern is attached to the returned trace either way.
	Observation *failures.Observation
}

// ReconstructionError reports that a finished run could not be
// attributed to a legal failure pattern of its mode within the fault
// bound — the network's behaviour left the paper's failure model
// (e.g. a processor resumed delivering after an omission in crash
// mode, or more than t processors lost messages).
type ReconstructionError struct{ Err error }

func (e *ReconstructionError) Error() string {
	return "nettransport: run not attributable to a legal pattern: " + e.Err.Error()
}

func (e *ReconstructionError) Unwrap() error { return e.Err }

// RunResilient executes the protocol over a TCP mesh with
// deadline-driven round synchronization instead of lockstep null
// frames: every processor waits at most opts.Deadline per round for
// its peers' frames, and a frame that misses the deadline — whether
// dropped, delayed, stuck behind a dead connection, or cut off by a
// partition — is treated as an omission by its sender, exactly the
// paper's failure semantics. Connections that die are re-established
// with exponential backoff and jitter (omission mode), so a killed
// connection degrades to omissions rather than aborting the run; in
// crash mode a closed connection is taken as permanent, matching the
// irrevocability of crashes.
//
// The engine records which required messages were actually delivered,
// reconstructs the effective failure pattern the network induced, and
// returns it as the trace's Pattern. VerifyReconstruction replays that
// pattern on the deterministic engine and checks trace equivalence,
// turning any chaos run into a machine-checked theorem. Message
// values produced by the protocol must be []byte.
func RunResilient(p sim.Protocol, params types.Params, cfg types.Config, opts Options) (*sim.Trace, error) {
	plan := opts.Plan
	mode, h := opts.Mode, opts.Horizon
	if plan != nil {
		if mode == 0 {
			mode = plan.Mode
		} else if mode != plan.Mode {
			return nil, fmt.Errorf("nettransport: options mode %v != plan mode %v", mode, plan.Mode)
		}
		if h == 0 {
			h = plan.H
		} else if h != plan.H {
			return nil, fmt.Errorf("nettransport: options horizon %d != plan horizon %d", h, plan.H)
		}
		if plan.N != params.N {
			return nil, fmt.Errorf("nettransport: plan is for n=%d, params n=%d", plan.N, params.N)
		}
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if cfg.N() != params.N {
		return nil, fmt.Errorf("nettransport: config n=%d, params n=%d", cfg.N(), params.N)
	}
	if !mode.Valid() {
		return nil, fmt.Errorf("nettransport: options need a failure mode (or a chaos plan)")
	}
	if h < 1 {
		return nil, fmt.Errorf("nettransport: horizon %d < 1 (set Options.Horizon or a chaos plan)", h)
	}
	deadline := opts.Deadline
	if deadline <= 0 {
		deadline = DefaultDeadline
	}
	backBase, backMax := opts.BackoffBase, opts.BackoffMax
	if backBase <= 0 {
		backBase = DefaultBackoffBase
	}
	if backMax < backBase {
		backMax = DefaultBackoffMax
	}
	obs := opts.Observation
	if obs == nil {
		obs = failures.NewObservation(params.N, h)
	}
	sp := telemetry.BeginSpan("net.run_resilient",
		telemetry.L("n", fmt.Sprint(params.N)),
		telemetry.L("mode", mode.String()),
		telemetry.L("horizon", fmt.Sprint(h)))
	defer sp.End()
	var seed int64 = 1
	if plan != nil {
		seed = plan.Seed
	}

	n := params.N
	ctx, cancel := context.WithCancel(context.Background())
	reg := &connReg{conns: make(map[net.Conn]struct{})}
	var netwg sync.WaitGroup // network goroutines: readers, writers, acceptors

	// One listener per processor, open for the whole run so killed
	// connections can be re-established.
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)

	shutdown := func() {
		cancel()
		closeListeners(listeners) // unblocks the accept loops
		reg.closeAll()            // unblocks reads and writes
		netwg.Wait()
	}

	for j := 0; j < n; j++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			shutdown()
			return nil, fmt.Errorf("nettransport: listen: %w", err)
		}
		listeners[j] = ln
		addrs[j] = ln.Addr().String()
	}

	// Per-processor inboxes and per-directed-link receive channels.
	inCh := make([]chan rframe, n)
	replace := make([][]chan net.Conn, n) // replace[j][i]: new conns for link i→j
	for j := 0; j < n; j++ {
		inCh[j] = make(chan rframe, 2*n*(h+2))
		replace[j] = make([]chan net.Conn, n)
		for i := 0; i < n; i++ {
			if i == j {
				continue
			}
			replace[j][i] = make(chan net.Conn, 4)
			rl := &recvLink{
				from: types.ProcID(i), to: types.ProcID(j),
				replace: replace[j][i], out: inCh[j],
				mode: mode, ctx: ctx,
			}
			netwg.Add(1)
			go func() { defer netwg.Done(); rl.run() }()
		}
	}

	// The shared round-schedule anchor: round r's frames are due by
	// t0 + r·deadline on every processor. Captured before the accept
	// loops and the dial loop, so both the handshake deadlines and the
	// sender links' delayed-frame aiming share one clock.
	t0 := time.Now()

	// Accept loops: route incoming connections (initial and
	// reconnects) to their link by the handshake byte.
	for j := 0; j < n; j++ {
		j := j
		netwg.Add(1)
		go func() {
			defer netwg.Done()
			for {
				conn, err := listeners[j].Accept()
				if err != nil {
					return // listener closed at shutdown
				}
				reg.add(conn)
				netwg.Add(1)
				go func() {
					defer netwg.Done()
					conn.SetReadDeadline(handshakeDeadline(t0, h, deadline, time.Now()))
					var id [1]byte
					if _, err := io.ReadFull(conn, id[:]); err != nil {
						conn.Close()
						return
					}
					conn.SetReadDeadline(time.Time{})
					i := int(id[0])
					if i < 0 || i >= n || i == j {
						conn.Close()
						return
					}
					select {
					case replace[j][i] <- conn:
					case <-ctx.Done():
						conn.Close()
					}
				}()
			}
		}()
	}

	// Sender links: one serializing writer per directed link, with
	// chaos realization and reconnect-with-backoff.
	sends := make([][]*sendLink, n)
	for i := 0; i < n; i++ {
		sends[i] = make([]*sendLink, n)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			sl := &sendLink{
				from: types.ProcID(i), to: types.ProcID(j),
				addr: addrs[j],
				q:    make(chan outFrame, h+4),
				mode: mode, ctx: ctx, reg: reg,
				base: backBase, max: backMax,
				t0: t0, deadline: deadline,
				rng:      rand.New(rand.NewSource(seed ^ int64(i*64+j+1)<<17)),
				mSent:    frameCounter(types.ProcID(i), types.ProcID(j), "sent"),
				mDropped: frameCounter(types.ProcID(i), types.ProcID(j), "dropped"),
				mRedials: telemetry.Default().Counter("eba_net_redials_total", linkLabel(types.ProcID(i), types.ProcID(j))),
			}
			conn, err := dialLink(sl.from, addrs[j], reg)
			if err != nil {
				shutdown()
				return nil, err
			}
			sl.conn = conn
			sends[i][j] = sl
			netwg.Add(1)
			go func() { defer netwg.Done(); sl.run() }()
		}
	}

	// Drive the protocol: one goroutine per processor. Round deadlines
	// use the shared schedule anchor — a processor that fills its
	// inbox early and races ahead still leaves its slower peers the
	// full window. Without the shared anchor, one timed-out round
	// shifts a slow processor's sends past a fast processor's next
	// per-round deadline and manufactures omissions out of skew.
	type result struct {
		value   types.Value
		at      types.Round
		decided bool
		err     error
	}
	results := make([]result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id types.ProcID) {
			defer wg.Done()
			nd := &rnode{
				id: id, n: n, h: types.Round(h),
				t0: t0, deadline: deadline,
				inCh:  inCh[id],
				sends: sends[id],
				plan:  plan,
				obs:   obs,
			}
			res := &results[id]
			proc := p.New(sim.Env{ID: id, Params: params, Initial: cfg[id], Mode: mode})
			res.value, res.at, res.decided, res.err = nd.drive(proc)
		}(types.ProcID(i))
	}
	wg.Wait()
	shutdown()

	for i := range results {
		if results[i].err != nil {
			return nil, results[i].err
		}
	}

	// Reconstruct the effective pattern the network induced and check
	// that the run stayed inside the paper's failure model.
	pat, err := obs.Reconstruct(mode)
	if err != nil {
		return nil, &ReconstructionError{Err: err}
	}
	if err := pat.CheckBound(params.T); err != nil {
		return nil, &ReconstructionError{Err: err}
	}
	telemetry.Emit("net.reconstructed", telemetry.L("pattern", pat.String()))
	tr := sim.NewTrace(p.Name(), cfg, pat)
	tr.Sent, tr.Delivered = obs.Counts()
	for i := range results {
		if results[i].decided {
			tr.Record(types.ProcID(i), results[i].value, results[i].at)
		}
	}
	return tr, nil
}

// VerifyReconstruction replays the live trace's reconstructed pattern
// on the deterministic engine and returns an error describing the
// first divergence — decisions, decision times, or message counters.
// A nil error is the machine-checked statement that the chaos run is
// trace-equivalent to the paper-semantics run under its reconstructed
// failure pattern.
func VerifyReconstruction(p sim.Protocol, params types.Params, live *sim.Trace) error {
	replay, err := sim.Run(p, params, live.Config, live.Pattern)
	if err != nil {
		return fmt.Errorf("nettransport: replay under reconstructed pattern failed: %w", err)
	}
	if d := sim.DiffTraces(live, replay); d != "" {
		return fmt.Errorf("nettransport: live run diverges from deterministic replay under reconstructed pattern %s: %s",
			live.Pattern, d)
	}
	return nil
}

// rframe is one event on a processor's merged inbox: a frame from a
// peer, or a permanent link-down notice (crash mode).
type rframe struct {
	from    types.ProcID
	round   types.Round
	payload []byte // nil for a null frame
	down    bool
}

// outFrame is one unit of work for a sender link.
type outFrame struct {
	round     types.Round
	payload   []byte // nil: null frame (round clock only)
	act       chaos.Action
	closeLink bool // half-close after earlier writes; go permanently silent
}

// connReg tracks live connections so shutdown can unblock goroutines
// parked in Read/Write.
type connReg struct {
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

func (g *connReg) add(c net.Conn) {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		c.Close()
		return
	}
	g.conns[c] = struct{}{}
	g.mu.Unlock()
}

func (g *connReg) closeAll() {
	g.mu.Lock()
	g.closed = true
	for c := range g.conns {
		c.Close()
	}
	g.conns = map[net.Conn]struct{}{}
	g.mu.Unlock()
}

func closeListeners(lns []net.Listener) {
	for _, ln := range lns {
		if ln != nil {
			ln.Close()
		}
	}
}

// handshakeDeadline bounds the wait for an accepted connection's
// one-byte sender-ID handshake. Reconnects legitimately arrive any
// time up to the end of the round schedule, so the deadline is the
// schedule's end — t0 + (h+1)·deadline, one slack round past the last
// due time — not a constant: a fixed 5 s both cut off handshakes in
// long-horizon runs whose schedule outlives it and kept accept
// goroutines parked long after short runs had finished. A 5 s floor
// (from now) still covers dial latency and skew when the schedule end
// is near or past.
func handshakeDeadline(t0 time.Time, h int, deadline time.Duration, now time.Time) time.Time {
	end := t0.Add(time.Duration(h+1) * deadline)
	if floor := now.Add(5 * time.Second); end.Before(floor) {
		return floor
	}
	return end
}

// dialLink establishes one directed connection with the one-byte
// sender-ID handshake.
func dialLink(from types.ProcID, addr string, reg *connReg) (net.Conn, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("nettransport: dial: %w", err)
	}
	reg.add(conn)
	if _, err := conn.Write([]byte{byte(from)}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("nettransport: handshake: %w", err)
	}
	return conn, nil
}

// recvLink owns the receiving end of one directed link: it decodes
// round-tagged frames onto the processor's merged inbox and survives
// connection churn by picking up replacement connections.
type recvLink struct {
	from, to types.ProcID
	replace  chan net.Conn
	out      chan<- rframe
	mode     failures.Mode
	ctx      context.Context
}

func (l *recvLink) run() {
	var conn net.Conn
	for {
		if conn == nil {
			select {
			case conn = <-l.replace:
			case <-l.ctx.Done():
				return
			}
		}
		r, payload, err := readRoundFrame(conn)
		if err == nil {
			select {
			case l.out <- rframe{from: l.from, round: r, payload: payload}:
			case <-l.ctx.Done():
				return
			}
			continue
		}
		conn.Close()
		conn = nil
		if l.mode == failures.Crash {
			// Crashes are irrevocable: a dead link stays dead, and the
			// receiver can immediately write off all later rounds.
			select {
			case l.out <- rframe{from: l.from, down: true}:
			case <-l.ctx.Done():
			}
			return
		}
		// Omission mode: wait for the sender to reconnect.
	}
}

// sendLink owns the sending end of one directed link: it serializes
// writes, realizes the chaos plan's per-frame actions, and redials
// with exponential backoff + jitter when the connection dies.
type sendLink struct {
	from, to types.ProcID
	addr     string
	q        chan outFrame
	mode     failures.Mode
	ctx      context.Context
	reg      *connReg

	conn     net.Conn
	dead     bool          // permanently silent (crash semantics)
	base     time.Duration // backoff
	max      time.Duration
	t0       time.Time     // shared round-schedule anchor
	deadline time.Duration // for aiming delayed frames past their window
	rng      *rand.Rand

	// Per-link telemetry handles, resolved once at construction.
	mSent, mDropped, mRedials *telemetry.Counter
}

func chaosRealized(m chaos.Mechanism) {
	telemetry.Default().Counter("eba_net_chaos_realized_total", telemetry.L("mech", m.String())).Inc()
}

func (l *sendLink) run() {
	for {
		select {
		case f := <-l.q:
			l.handle(f)
		case <-l.ctx.Done():
			return
		}
	}
}

func (l *sendLink) handle(f outFrame) {
	if f.closeLink {
		if l.conn != nil {
			halfClose(l.conn)
			l.conn = nil
		}
		l.dead = true
		return
	}
	if l.dead {
		l.mDropped.Inc()
		return
	}
	switch f.act.Mech {
	case chaos.Drop, chaos.Partition:
		// Silence: the receiver's deadline expires.
		chaosRealized(f.act.Mech)
		l.mDropped.Inc()
	case chaos.Kill:
		chaosRealized(f.act.Mech)
		l.mDropped.Inc()
		if l.conn != nil {
			l.conn.Close()
			l.conn = nil
		}
		if l.mode == failures.Crash {
			l.dead = true
		}
	case chaos.Delay:
		// Hold the frame until half a round past its due time, so it
		// arrives stale and the receiver discards it. (The write still
		// happens: a delayed frame is a real frame, just a late one.)
		chaosRealized(f.act.Mech)
		due := l.t0.Add(time.Duration(f.round)*l.deadline + l.deadline/2)
		if !l.sleep(time.Until(due)) {
			l.mDropped.Inc()
			return
		}
		l.write(f.round, f.payload, false)
	case chaos.Truncate:
		chaosRealized(f.act.Mech)
		l.mDropped.Inc() // a torn frame never parses
		l.truncate(f)
	default:
		if f.act.Dup {
			telemetry.Default().Counter("eba_net_chaos_realized_total", telemetry.L("mech", "dup")).Inc()
		}
		l.write(f.round, f.payload, f.act.Dup)
	}
}

// write emits the frame, reconnecting if the link is down; the frame
// (and at most one more for the duplicate) is abandoned if the write
// fails twice — the loss shows up as an omission, which is exactly
// what it is.
func (l *sendLink) write(r types.Round, payload []byte, dup bool) {
	for attempt := 0; attempt < 2; attempt++ {
		if l.conn == nil && !l.reconnect() {
			l.mDropped.Inc()
			return
		}
		if err := writeRoundFrame(l.conn, r, payload); err == nil {
			if dup {
				writeRoundFrame(l.conn, r, payload) // receiver dedupes by round
			}
			l.mSent.Inc()
			return
		}
		l.conn.Close()
		l.conn = nil
		if l.mode == failures.Crash {
			l.dead = true
			l.mDropped.Inc()
			return
		}
	}
	l.mDropped.Inc()
}

// truncate writes a torn frame — a header promising more bytes than
// the stream will ever carry — and tears the connection down.
func (l *sendLink) truncate(f outFrame) {
	if l.conn == nil && !l.reconnect() {
		return
	}
	payload := f.payload
	if payload == nil {
		payload = []byte{0xde, 0xad, 0xbe, 0xef}
	}
	var hdr [2*binary.MaxVarintLen64 + 1]byte
	k := binary.PutUvarint(hdr[:], uint64(f.round))
	hdr[k] = flagPayload
	k += 1 + binary.PutUvarint(hdr[k+1:], uint64(len(payload)+16))
	torn := append(hdr[:k:k], payload[:len(payload)/2]...)
	l.conn.Write(torn)
	l.conn.Close()
	l.conn = nil
	if l.mode == failures.Crash {
		l.dead = true
	}
}

// reconnect redials with exponential backoff and jitter. Crash-mode
// links never come back: a dead connection is a crash.
func (l *sendLink) reconnect() bool {
	if l.mode == failures.Crash {
		l.dead = true
		return false
	}
	d := l.base
	for {
		l.mRedials.Inc()
		conn, err := dialLink(l.from, l.addr, l.reg)
		if err == nil {
			l.conn = conn
			return true
		}
		jitter := d/2 + time.Duration(l.rng.Int63n(int64(d/2)+1))
		if !l.sleep(jitter) {
			return false
		}
		if d *= 2; d > l.max {
			d = l.max
		}
	}
}

func (l *sendLink) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-l.ctx.Done():
		return false
	}
}

// halfClose flushes and closes the write side when the transport
// supports it (a crashed processor's last frames still arrive), and
// falls back to a full close.
func halfClose(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.CloseWrite()
		return
	}
	c.Close()
}

// rnode drives one processor through the deadline-driven rounds.
type rnode struct {
	id       types.ProcID
	n        int
	h        types.Round
	t0       time.Time     // shared round-schedule anchor
	deadline time.Duration // round r frames are due by t0 + r·deadline
	inCh     chan rframe
	sends    []*sendLink
	plan     *chaos.Plan
	obs      *failures.Observation
}

func (nd *rnode) drive(proc sim.Process) (types.Value, types.Round, bool, error) {
	var (
		value   types.Value = types.Unset
		at      types.Round = -1
		decided bool
	)
	record := func(r types.Round) {
		if decided {
			return
		}
		if v, ok := proc.Decided(); ok {
			value, at, decided = v, r, true
		}
	}
	record(0)

	silencedAt, silenced := nd.plan.SilencedAfter(nd.id)
	dead := types.EmptySet
	stash := make(map[types.Round]map[types.ProcID][]byte)
	stashed := make(map[types.Round]types.ProcSet) // includes null frames
	inbox := make([]sim.Message, nd.n)

	for r := types.Round(1); r <= nd.h; r++ {
		out := proc.Send(r)
		if out != nil && len(out) != nd.n {
			return value, at, decided, fmt.Errorf("nettransport: process %d sent %d messages, want %d", nd.id, len(out), nd.n)
		}
		for j := 0; j < nd.n; j++ {
			dst := types.ProcID(j)
			if dst == nd.id {
				continue
			}
			var payload []byte
			if out != nil && out[j] != nil {
				b, ok := out[j].([]byte)
				if !ok {
					return value, at, decided, fmt.Errorf("nettransport: process %d produced a non-[]byte message", nd.id)
				}
				payload = b
				// Required is recorded even when the frame will never
				// be sent: a crashed or faulty processor's unsent
				// messages are precisely its omissions.
				nd.obs.Required(nd.id, r, dst)
				mNetRequired.Inc()
			}
			if silenced && r > silencedAt {
				continue // crashed: nothing more reaches the network
			}
			nd.sends[j].q <- outFrame{round: r, payload: payload, act: nd.plan.Action(nd.id, r, dst)}
		}
		if silenced && r == silencedAt {
			for j := 0; j < nd.n; j++ {
				if types.ProcID(j) != nd.id {
					nd.sends[j].q <- outFrame{closeLink: true}
				}
			}
		}

		// Receive phase: collect round-r frames until every live peer
		// is accounted for or the deadline expires.
		for j := range inbox {
			inbox[j] = nil
		}
		pending := types.EmptySet
		accept := func(from types.ProcID, payload []byte) {
			if payload != nil {
				inbox[from] = payload
				nd.obs.Delivered(from, r, nd.id)
				mNetDelivered.Inc()
			}
		}
		for j := 0; j < nd.n; j++ {
			peer := types.ProcID(j)
			if peer == nd.id {
				continue
			}
			if stashed[r].Contains(peer) {
				accept(peer, stash[r][peer])
				continue
			}
			if dead.Contains(peer) {
				continue // permanently down: omission unless already stashed
			}
			pending = pending.Add(peer)
		}
		handle := func(f rframe) {
			switch {
			case f.down:
				dead = dead.Add(f.from)
				pending = pending.Remove(f.from)
			case f.round == r && pending.Contains(f.from):
				pending = pending.Remove(f.from)
				accept(f.from, f.payload)
			case f.round > r && !stashed[f.round].Contains(f.from):
				if stash[f.round] == nil {
					stash[f.round] = make(map[types.ProcID][]byte)
				}
				stash[f.round][f.from] = f.payload
				stashed[f.round] = stashed[f.round].Add(f.from)
			default:
				// Stale round or duplicate — discard. These are the
				// frames that physically arrived but too late to count
				// (chaos-delayed frames land here).
				frameCounter(f.from, nd.id, "late").Inc()
			}
		}
		if !pending.Empty() {
			timer := time.NewTimer(time.Until(nd.t0.Add(time.Duration(r) * nd.deadline)))
		waiting:
			for !pending.Empty() {
				select {
				case f := <-nd.inCh:
					handle(f)
				case <-timer.C:
					// Drain frames that raced the deadline, then write
					// the rest off as omissions.
				drain:
					for !pending.Empty() {
						select {
						case f := <-nd.inCh:
							handle(f)
						default:
							break drain
						}
					}
					break waiting
				}
			}
			timer.Stop()
		}
		if telemetry.Enabled() {
			mNetSlack.Observe(time.Until(nd.t0.Add(time.Duration(r) * nd.deadline)).Seconds())
		}
		delete(stash, r)
		delete(stashed, r)

		proc.Receive(r, inbox)
		record(r)
	}
	return value, at, decided, nil
}
