package nettransport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"github.com/eventual-agreement/eba/internal/failures"
	"github.com/eventual-agreement/eba/internal/fip"
	"github.com/eventual-agreement/eba/internal/protocols"
	"github.com/eventual-agreement/eba/internal/sim"
	"github.com/eventual-agreement/eba/internal/types"
	"github.com/eventual-agreement/eba/internal/views"
)

// The TCP engine reproduces the deterministic engine's decisions for
// the wire-format full-information protocol, across crash and
// omission scenarios.
func TestTCPMatchesSim(t *testing.T) {
	params := types.Params{N: 4, T: 1}
	pair := protocols.P0OptPair()
	scenarios := []struct {
		cfg types.Config
		pat *failures.Pattern
	}{
		{types.ConfigFromBits(4, 0b1110), failures.FailureFree(failures.Crash, 4, 3)},
		{types.ConfigFromBits(4, 0b1111), failures.Silent(failures.Crash, 4, 3, 2, 2)},
		{types.ConfigFromBits(4, 0b1110), failures.SilentExcept(4, 3, 0, 2, 1)},
		{types.ConfigFromBits(4, 0b0000), failures.Silent(failures.Omission, 4, 3, 1, 1)},
	}
	for _, sc := range scenarios {
		in := views.NewInterner(4)
		want, err := sim.Run(fip.Protocol(in, pair), params, sc.cfg, sc.pat)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Run(fip.WireProtocol(pair), params, sc.cfg, sc.pat)
		if err != nil {
			t.Fatal(err)
		}
		if d := sim.DiffDecisions(got, want); d != "" {
			t.Fatalf("cfg %s %s: tcp vs sim: %s", sc.cfg, sc.pat, d)
		}
		if got.Sent != got.Delivered {
			t.Fatal("sender-side injection should equate sent and delivered")
		}
	}
}

// bytesProto is a trivial []byte protocol used for error-path and
// counter tests: every processor broadcasts its ID byte each round
// and decides its initial value at time 1.
type bytesProto struct{}

func (bytesProto) Name() string { return "bytes-test" }

func (bytesProto) New(env sim.Env) sim.Process { return &bytesProc{env: env} }

type bytesProc struct {
	env     sim.Env
	seen    int
	decided bool
}

func (p *bytesProc) Send(types.Round) []sim.Message {
	out := make([]sim.Message, p.env.Params.N)
	for i := range out {
		out[i] = []byte{byte(p.env.ID)}
	}
	return out
}

func (p *bytesProc) Receive(r types.Round, msgs []sim.Message) {
	for j, m := range msgs {
		if m == nil {
			continue
		}
		b := m.([]byte)
		if len(b) != 1 || int(b[0]) != j {
			panic("corrupted frame")
		}
		p.seen++
	}
	p.decided = true
}

func (p *bytesProc) Decided() (types.Value, bool) {
	if !p.decided {
		return types.Unset, false
	}
	return p.env.Initial, true
}

func TestTCPMessageCounters(t *testing.T) {
	const n, h = 3, 2
	params := types.Params{N: n, T: 1}
	tr, err := Run(bytesProto{}, params, types.ConfigFromBits(n, 0), failures.FailureFree(failures.Omission, n, h))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Sent != n*(n-1)*h {
		t.Fatalf("Sent = %d, want %d", tr.Sent, n*(n-1)*h)
	}
	// Fault injection suppresses sender-side.
	lossy, err := Run(bytesProto{}, params, types.ConfigFromBits(n, 0), failures.Silent(failures.Omission, n, h, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if lossy.Sent != n*(n-1)*h-(n-1)*h {
		t.Fatalf("lossy Sent = %d", lossy.Sent)
	}
}

// nonBytesProto produces a non-[]byte message; the engine must report
// it as an error rather than panic.
type nonBytesProto struct{}

func (nonBytesProto) Name() string { return "bad" }

func (nonBytesProto) New(env sim.Env) sim.Process { return nonBytesProc{n: env.Params.N} }

type nonBytesProc struct{ n int }

func (p nonBytesProc) Send(types.Round) []sim.Message {
	out := make([]sim.Message, p.n)
	for i := range out {
		out[i] = 42
	}
	return out
}

func (nonBytesProc) Receive(types.Round, []sim.Message) {}
func (nonBytesProc) Decided() (types.Value, bool)       { return types.Unset, false }

func TestTCPRejectsNonBytes(t *testing.T) {
	params := types.Params{N: 3, T: 0}
	_, err := Run(nonBytesProto{}, params, types.ConfigFromBits(3, 0), failures.FailureFree(failures.Crash, 3, 1))
	if err == nil {
		t.Fatal("non-[]byte message accepted")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, {1}, bytes.Repeat([]byte{7}, 1000)}
	for _, p := range payloads {
		if err := writeFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range payloads {
		got, err := readFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if (want == nil) != (got == nil) || !bytes.Equal(want, got) {
			t.Fatalf("frame round trip: %v -> %v", want, got)
		}
	}
	// Oversized frames rejected with the typed error.
	var big bytes.Buffer
	big.WriteByte(1)
	hdr := make([]byte, 10)
	n := binary.PutUvarint(hdr, maxFrame+1)
	big.Write(hdr[:n])
	if _, err := readFrame(&big); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame: err = %v, want ErrFrameTooLarge", err)
	}
	// A stream that dies mid-frame is a truncation, not a protocol
	// violation.
	if _, err := readFrame(bytes.NewReader([]byte{1, 5, 1, 2})); !errors.Is(err, ErrTruncatedFrame) {
		t.Fatalf("torn frame: err = %v, want ErrTruncatedFrame", err)
	}
	// An unknown flag byte poisons the stream.
	if _, err := readFrame(bytes.NewReader([]byte{0x7f})); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("bad flag: err = %v, want ErrBadFrame", err)
	}
	// A clean close between frames is a plain EOF — the classic
	// engine's normal end-of-run, never a typed failure.
	if _, err := readFrame(bytes.NewReader(nil)); err != io.EOF {
		t.Fatalf("clean close: err = %v, want io.EOF", err)
	}
}
