package nettransport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"github.com/eventual-agreement/eba/internal/types"
)

// maxFrame bounds a frame payload (1 MiB — far beyond any view).
const maxFrame = 1 << 20

// Typed codec errors. Callers can distinguish a frame that violates
// the protocol (oversized, malformed) from a connection that died
// mid-frame (truncated): the former poisons the stream, the latter is
// the normal signature of a torn TCP connection and degrades to an
// omission in the resilient engine.
var (
	// ErrFrameTooLarge reports a frame whose declared payload length
	// exceeds maxFrame. The stream is unusable after this error: the
	// oversized payload is never read.
	ErrFrameTooLarge = errors.New("nettransport: frame exceeds size limit")
	// ErrTruncatedFrame reports a connection that died mid-frame: the
	// header promised more bytes than the stream delivered.
	ErrTruncatedFrame = errors.New("nettransport: truncated frame")
	// ErrBadFrame reports a malformed header (unknown flag byte or an
	// overlong/invalid length varint).
	ErrBadFrame = errors.New("nettransport: malformed frame")
)

// Frame flag bytes: a null frame is the round clock with nothing to
// say; a payload frame carries a length-prefixed message.
const (
	flagNull    = 0
	flagPayload = 1
)

// writeFrame emits [flag][len uvarint][payload]; a nil payload encodes
// the null frame as the bare flag byte (a zero-length payload and a
// null frame are distinguished by the flag).
func writeFrame(w io.Writer, payload []byte) error {
	var hdr [binary.MaxVarintLen64 + 1]byte
	if payload == nil {
		hdr[0] = flagNull
		_, err := w.Write(hdr[:1])
		return err
	}
	hdr[0] = flagPayload
	k := binary.PutUvarint(hdr[1:], uint64(len(payload)))
	if _, err := w.Write(hdr[:1+k]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame; a nil result is the null frame. A clean
// close between frames surfaces as io.EOF; a close mid-frame as
// ErrTruncatedFrame.
func readFrame(r io.Reader) ([]byte, error) {
	var flag [1]byte
	if _, err := io.ReadFull(r, flag[:]); err != nil {
		return nil, err // io.EOF: clean close between frames
	}
	switch flag[0] {
	case flagNull:
		return nil, nil
	case flagPayload:
	default:
		return nil, fmt.Errorf("%w: flag byte %#x", ErrBadFrame, flag[0])
	}
	size, err := readSize(r)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, size)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, truncated(err)
	}
	return buf, nil
}

// writeRoundFrame emits [round uvarint][flag][len uvarint][payload]:
// the resilient engine's frame, tagged with its round so receivers can
// discard duplicates and stale deliveries and realign after a
// reconnect.
func writeRoundFrame(w io.Writer, r types.Round, payload []byte) error {
	var hdr [2*binary.MaxVarintLen64 + 1]byte
	k := binary.PutUvarint(hdr[:], uint64(r))
	if payload == nil {
		hdr[k] = flagNull
		_, err := w.Write(hdr[: k+1 : k+1])
		return err
	}
	hdr[k] = flagPayload
	k += 1 + binary.PutUvarint(hdr[k+1:], uint64(len(payload)))
	if _, err := w.Write(hdr[:k:k]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readRoundFrame reads one round-tagged frame. A nil payload with a
// nil error is a null frame. Error semantics match readFrame.
func readRoundFrame(r io.Reader) (types.Round, []byte, error) {
	br := byteReader{r}
	rnd, err := binary.ReadUvarint(br)
	if err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF // clean close between frames
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, nil, truncated(err)
		}
		return 0, nil, fmt.Errorf("%w: bad round varint (%v)", ErrBadFrame, err)
	}
	if rnd > 1<<32 {
		return 0, nil, fmt.Errorf("%w: round %d out of range", ErrBadFrame, rnd)
	}
	var flag [1]byte
	if _, err := io.ReadFull(r, flag[:]); err != nil {
		return 0, nil, truncated(err)
	}
	switch flag[0] {
	case flagNull:
		return types.Round(rnd), nil, nil
	case flagPayload:
	default:
		return 0, nil, fmt.Errorf("%w: flag byte %#x", ErrBadFrame, flag[0])
	}
	size, err := readSize(r)
	if err != nil {
		return 0, nil, err
	}
	buf := make([]byte, size)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, truncated(err)
	}
	return types.Round(rnd), buf, nil
}

// readSize reads and bounds a payload length varint.
func readSize(r io.Reader) (uint64, error) {
	size, err := binary.ReadUvarint(byteReader{r})
	if err != nil {
		if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, truncated(err)
		}
		// ReadUvarint's only non-I/O failure is an overflowing varint.
		return 0, fmt.Errorf("%w: bad length varint (%v)", ErrBadFrame, err)
	}
	if size > maxFrame {
		return 0, fmt.Errorf("%w: %d bytes (limit %d)", ErrFrameTooLarge, size, maxFrame)
	}
	return size, nil
}

// truncated maps a short-read error to ErrTruncatedFrame, preserving
// the cause; other I/O errors pass through unchanged.
func truncated(err error) error {
	if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("%w: %v", ErrTruncatedFrame, err)
	}
	return err
}

// byteReader adapts an io.Reader to io.ByteReader for ReadUvarint.
type byteReader struct{ r io.Reader }

func (b byteReader) ReadByte() (byte, error) {
	var one [1]byte
	_, err := io.ReadFull(b.r, one[:])
	return one[0], err
}
