// Package nettransport is the third execution engine: it runs
// protocols over real TCP loopback connections — one goroutine per
// processor, a full mesh of length-prefixed framed streams, and
// sender-side fault injection. Unlike the in-process transport it
// exercises genuine serialization: messages must be []byte (the
// fip.WireProtocol adapter produces exactly that).
//
// Synchrony is modelled explicitly: every processor writes one frame
// per peer per round — a payload frame or a null frame — standing in
// for the round clock of the synchronous model (a deployed system
// would use timeouts instead). An omitted message therefore costs a
// two-byte null frame, and rounds stay in lockstep without timers.
package nettransport

import (
	"fmt"
	"io"
	"net"
	"sync"

	"github.com/eventual-agreement/eba/internal/failures"
	"github.com/eventual-agreement/eba/internal/sim"
	"github.com/eventual-agreement/eba/internal/types"
)

// Run executes the protocol over a TCP mesh on the loopback
// interface. Message values produced by the protocol must be []byte.
func Run(p sim.Protocol, params types.Params, cfg types.Config, pat *failures.Pattern) (*sim.Trace, error) {
	if err := sim.ValidateRun(params, cfg, pat); err != nil {
		return nil, err
	}
	n := params.N
	h := types.Round(pat.Horizon())

	mesh, err := dialMesh(n)
	if err != nil {
		return nil, err
	}
	defer mesh.close()

	type result struct {
		value   types.Value
		at      types.Round
		decided bool
		sent    int
		err     error
	}
	results := make([]result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id types.ProcID) {
			defer wg.Done()
			res := &results[id]
			proc := p.New(sim.Env{ID: id, Params: params, Initial: cfg[id], Mode: pat.Mode()})
			record := func(at types.Round) {
				if res.decided {
					return
				}
				if v, ok := proc.Decided(); ok {
					res.value, res.at, res.decided = v, at, true
				}
			}
			record(0)
			inbox := make([]sim.Message, n)
			for r := types.Round(1); r <= h; r++ {
				out := proc.Send(r)
				if out != nil && len(out) != n {
					res.err = fmt.Errorf("nettransport: process %d sent %d messages, want %d", id, len(out), n)
					out = nil
				}
				// Write one frame to every peer concurrently (payload,
				// or null when there is nothing to say or the fault
				// pattern suppresses the message at the sender).
				var writers sync.WaitGroup
				writeErr := make([]error, n)
				for j := 0; j < n; j++ {
					dst := types.ProcID(j)
					if dst == id {
						continue
					}
					var payload []byte
					if out != nil && out[j] != nil && pat.Delivers(id, r, dst) {
						b, ok := out[j].([]byte)
						if !ok {
							res.err = fmt.Errorf("nettransport: process %d produced a non-[]byte message", id)
						} else {
							payload = b
							res.sent++
						}
					}
					writers.Add(1)
					go func(j int, payload []byte) {
						defer writers.Done()
						writeErr[j] = writeFrame(mesh.conn(int(id), j), payload)
					}(j, payload)
				}
				writers.Wait()
				for _, werr := range writeErr {
					if werr != nil && res.err == nil {
						res.err = werr
					}
				}
				// Read one frame from every peer.
				for j := 0; j < n; j++ {
					inbox[j] = nil
					if j == int(id) {
						continue
					}
					payload, rerr := readFrame(mesh.conn(int(id), j))
					if rerr != nil {
						if res.err == nil {
							res.err = rerr
						}
						continue
					}
					if payload != nil {
						inbox[j] = payload
					}
				}
				if res.err != nil {
					return
				}
				proc.Receive(r, inbox)
				record(r)
			}
		}(types.ProcID(i))
	}
	wg.Wait()

	tr := sim.NewTrace(p.Name(), cfg, pat)
	for i := range results {
		if results[i].err != nil {
			return nil, results[i].err
		}
		tr.Sent += results[i].sent
		if results[i].decided {
			tr.Record(types.ProcID(i), results[i].value, results[i].at)
		}
	}
	// Sender-side injection means delivered == sent.
	tr.Delivered = tr.Sent
	return tr, nil
}

// mesh is a full mesh of TCP connections over loopback.
type mesh struct {
	n     int
	conns [][]net.Conn // conns[i][j]: i's connection to j (nil on diagonal)
}

func (m *mesh) conn(i, j int) net.Conn { return m.conns[i][j] }

func (m *mesh) close() {
	for i := range m.conns {
		for j := range m.conns[i] {
			if i < j && m.conns[i][j] != nil {
				m.conns[i][j].Close()
			}
		}
	}
}

// dialMesh builds the mesh: every pair (i < j) gets one TCP
// connection through a loopback listener, identified by a one-byte
// handshake carrying the dialer's ID.
func dialMesh(n int) (*mesh, error) {
	m := &mesh{n: n, conns: make([][]net.Conn, n)}
	for i := range m.conns {
		m.conns[i] = make([]net.Conn, n)
	}
	for j := 1; j < n; j++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			m.close()
			return nil, fmt.Errorf("nettransport: listen: %w", err)
		}
		addr := ln.Addr().String()
		// Accept j's incoming connections from every i < j.
		type accepted struct {
			id   int
			conn net.Conn
			err  error
		}
		acceptCh := make(chan accepted, j)
		go func(count int) {
			for k := 0; k < count; k++ {
				conn, err := ln.Accept()
				if err != nil {
					acceptCh <- accepted{err: err}
					return
				}
				var idByte [1]byte
				if _, err := io.ReadFull(conn, idByte[:]); err != nil {
					acceptCh <- accepted{err: err}
					return
				}
				acceptCh <- accepted{id: int(idByte[0]), conn: conn}
			}
		}(j)
		for i := 0; i < j; i++ {
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				ln.Close()
				m.close()
				return nil, fmt.Errorf("nettransport: dial: %w", err)
			}
			if _, err := conn.Write([]byte{byte(i)}); err != nil {
				ln.Close()
				m.close()
				return nil, fmt.Errorf("nettransport: handshake: %w", err)
			}
			m.conns[i][j] = conn
		}
		for i := 0; i < j; i++ {
			acc := <-acceptCh
			if acc.err != nil {
				ln.Close()
				m.close()
				return nil, fmt.Errorf("nettransport: accept: %w", acc.err)
			}
			if acc.id < 0 || acc.id >= j || m.conns[j][acc.id] != nil {
				ln.Close()
				m.close()
				return nil, fmt.Errorf("nettransport: bad handshake id %d", acc.id)
			}
			m.conns[j][acc.id] = acc.conn
		}
		ln.Close()
	}
	return m, nil
}
