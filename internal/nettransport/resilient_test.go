package nettransport

import (
	"errors"
	"testing"
	"time"

	"github.com/eventual-agreement/eba/internal/chaos"
	"github.com/eventual-agreement/eba/internal/failures"
	"github.com/eventual-agreement/eba/internal/fip"
	"github.com/eventual-agreement/eba/internal/protocols"
	"github.com/eventual-agreement/eba/internal/sim"
	"github.com/eventual-agreement/eba/internal/types"
)

// testDeadline is deliberately small: every omitted message costs the
// receiver one deadline wait, so test wall-clock scales with it.
const testDeadline = 200 * time.Millisecond

// runVerified runs the protocol under the plan and cross-checks the
// live trace against the deterministic replay. Reconstruction can fail
// transiently under scheduler pressure (a delayed frame squeaks past
// its deadline on one receiver but not another, pushing the observed
// pattern outside the mode); those runs are retried with a doubled
// deadline. A trace mismatch is a real bug and fails immediately.
func runVerified(t *testing.T, p sim.Protocol, params types.Params, cfg types.Config, plan *chaos.Plan) *sim.Trace {
	t.Helper()
	deadline := testDeadline
	for attempt := 1; ; attempt++ {
		tr, err := RunResilient(p, params, cfg, Options{Plan: plan, Deadline: deadline})
		if err != nil {
			var rerr *ReconstructionError
			if errors.As(err, &rerr) && attempt < 3 {
				t.Logf("attempt %d (deadline %v): %v — retrying", attempt, deadline, err)
				deadline *= 2
				continue
			}
			t.Fatalf("RunResilient: %v (plan %s)", err, plan)
		}
		if err := VerifyReconstruction(p, params, tr); err != nil {
			t.Fatalf("%v", err)
		}
		return tr
	}
}

// The headline acceptance test: a seeded chaos run whose plan uses
// drop, delay, AND kill completes; the reconstructor emits a legal
// omission pattern within the fault bound; and the deterministic
// engine, replayed under that pattern, produces an identical trace.
func TestChaosRunReplaysDeterministically(t *testing.T) {
	params := types.Params{N: 4, T: 2}
	const h = 3
	proto := fip.WireProtocol(protocols.Chain0SyntacticPair())

	// Scan seeds for a plan that actually exercises all three
	// mechanisms (seed scanning is deterministic; the first hit is
	// always the same seed).
	var plan *chaos.Plan
	for seed := int64(0); seed < 256; seed++ {
		p, err := chaos.New(failures.Omission, params, h, seed, chaos.Drop, chaos.Delay, chaos.Kill)
		if err != nil {
			t.Fatal(err)
		}
		m := p.Mechanisms()
		if m[chaos.Drop] > 0 && m[chaos.Delay] > 0 && m[chaos.Kill] > 0 {
			plan = p
			break
		}
	}
	if plan == nil {
		t.Fatal("no seed in [0,256) plans drop+delay+kill")
	}
	t.Logf("plan: %s", plan)

	tr := runVerified(t, proto, params, types.ConfigFromBits(4, 0b0110), plan)

	if tr.Pattern.Mode() != failures.Omission {
		t.Fatalf("reconstructed mode = %v", tr.Pattern.Mode())
	}
	if err := tr.Pattern.CheckBound(params.T); err != nil {
		t.Fatal(err)
	}
	if !tr.NonfaultyDecided() {
		t.Fatalf("nonfaulty processor undecided: %s", tr)
	}
	t.Logf("reconstructed: %s (sent=%d delivered=%d)", tr.Pattern, tr.Sent, tr.Delivered)
}

// Property: across random seeds and both failure modes, the chaos run
// is trace-equivalent to the deterministic engine under the
// reconstructed pattern — decisions, decision times, and message
// counters all match.
func TestChaosCrossEngineEquivalence(t *testing.T) {
	seeds := 6
	if testing.Short() {
		seeds = 2
	}
	cases := []struct {
		mode failures.Mode
		pair fip.Pair
	}{
		{failures.Crash, protocols.P0OptPair()},
		{failures.Omission, protocols.Chain0SyntacticPair()},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.mode.String(), func(t *testing.T) {
			t.Parallel()
			params := types.Params{N: 4, T: 2}
			proto := fip.WireProtocol(tc.pair)
			for seed := int64(0); seed < int64(seeds); seed++ {
				plan, err := chaos.New(tc.mode, params, 3, seed)
				if err != nil {
					t.Fatal(err)
				}
				cfg := types.ConfigFromBits(4, uint64(seed*5)%16)
				tr := runVerified(t, proto, params, cfg, plan)
				if tr.Pattern.Mode() != tc.mode {
					t.Fatalf("seed %d: reconstructed mode %v", seed, tr.Pattern.Mode())
				}
				t.Logf("seed %d: %s", seed, tr.Pattern)
			}
		})
	}
}

// A chaos-free resilient run reconstructs the failure-free pattern and
// matches the deterministic failure-free run exactly.
func TestResilientFailureFree(t *testing.T) {
	params := types.Params{N: 4, T: 1}
	const h = 3
	proto := fip.WireProtocol(protocols.P0OptPair())
	cfg := types.ConfigFromBits(4, 0b1010)

	tr, err := RunResilient(proto, params, cfg, Options{
		Mode: failures.Crash, Horizon: h, Deadline: testDeadline,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Pattern.Faulty().Empty() {
		t.Fatalf("spurious faults reconstructed: %s", tr.Pattern)
	}
	want, err := sim.Run(proto, params, cfg, failures.FailureFree(failures.Crash, 4, h))
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Same(want) {
		t.Fatalf("failure-free divergence: %s", sim.DiffTraces(tr, want))
	}
}

// Killed connections in omission mode degrade to omissions (never to
// aborted runs): a partition-heavy plan still completes and verifies.
func TestResilientSurvivesConnectionChurn(t *testing.T) {
	params := types.Params{N: 4, T: 2}
	proto := fip.WireProtocol(protocols.Chain0SyntacticPair())
	for seed := int64(0); seed < 64; seed++ {
		plan, err := chaos.New(failures.Omission, params, 3, seed, chaos.Kill, chaos.Truncate)
		if err != nil {
			t.Fatal(err)
		}
		m := plan.Mechanisms()
		if m[chaos.Kill] == 0 || m[chaos.Truncate] == 0 {
			continue
		}
		tr := runVerified(t, proto, params, types.ConfigFromBits(4, 0b0001), plan)
		t.Logf("seed %d: %s survived kill×%d truncate×%d", seed, tr.Pattern, m[chaos.Kill], m[chaos.Truncate])
		return
	}
	t.Fatal("no seed in [0,64) plans kill+truncate")
}

func TestResilientOptionValidation(t *testing.T) {
	params := types.Params{N: 3, T: 1}
	proto := fip.WireProtocol(protocols.P0OptPair())
	cfg := types.ConfigFromBits(3, 0)
	plan, err := chaos.New(failures.Crash, params, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	bad := []Options{
		{},                                    // no mode, no plan
		{Mode: failures.Crash},                // no horizon
		{Plan: plan, Mode: failures.Omission}, // mode conflicts with plan
		{Plan: plan, Horizon: 5},              // horizon conflicts with plan
	}
	for i, opts := range bad {
		if _, err := RunResilient(proto, params, cfg, opts); err == nil {
			t.Fatalf("options %d accepted: %+v", i, opts)
		}
	}
	wrongN, err := chaos.New(failures.Crash, types.Params{N: 4, T: 1}, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunResilient(proto, params, cfg, Options{Plan: wrongN}); err == nil {
		t.Fatal("plan with mismatched n accepted")
	}
}

// ReconstructionError wraps the underlying legality failure so callers
// can distinguish "the network left the failure model" from engine
// errors.
func TestReconstructionErrorUnwrap(t *testing.T) {
	inner := errors.New("boom")
	err := &ReconstructionError{Err: inner}
	if !errors.Is(err, inner) {
		t.Fatal("ReconstructionError does not unwrap")
	}
	if err.Error() == "" {
		t.Fatal("empty error string")
	}
}

// TestHandshakeDeadline pins the accept-side handshake deadline to the
// round schedule: it must cover the whole schedule (regression for the
// hardcoded 5 s that cut off reconnect handshakes in runs whose
// schedule outlived it) and still apply the 5 s floor when the
// schedule end is sooner.
func TestHandshakeDeadline(t *testing.T) {
	t0 := time.Now()

	// Long schedule: 9 rounds at 6 s outlives the old fixed 5 s by far;
	// the deadline must be the schedule end, one slack round past the
	// last due time.
	got := handshakeDeadline(t0, 9, 6*time.Second, t0)
	if want := t0.Add(10 * 6 * time.Second); !got.Equal(want) {
		t.Fatalf("long schedule: deadline %v, want schedule end %v", got, want)
	}
	if got.Before(t0.Add(5 * time.Second)) {
		t.Fatalf("long schedule: deadline %v inside the old 5s window", got)
	}

	// Tiny schedule: the 5 s floor wins, so a late-run accept still has
	// time to read its handshake byte.
	now := t0.Add(100 * time.Millisecond)
	got = handshakeDeadline(t0, 2, 10*time.Millisecond, now)
	if want := now.Add(5 * time.Second); !got.Equal(want) {
		t.Fatalf("tiny schedule: deadline %v, want floor %v", got, want)
	}

	// Boundary: schedule end exactly at the floor is kept as-is.
	got = handshakeDeadline(t0, 4, time.Second, t0)
	if want := t0.Add(5 * time.Second); !got.Equal(want) {
		t.Fatalf("boundary: deadline %v, want %v", got, want)
	}
}
