package nettransport

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/eventual-agreement/eba/internal/chaos"
	"github.com/eventual-agreement/eba/internal/failures"
	"github.com/eventual-agreement/eba/internal/fip"
	"github.com/eventual-agreement/eba/internal/protocols"
	"github.com/eventual-agreement/eba/internal/sim"
	"github.com/eventual-agreement/eba/internal/telemetry"
	"github.com/eventual-agreement/eba/internal/types"
)

// patternOmissions counts the messages the pattern suppresses over the
// full mesh — in a full-information protocol every processor sends to
// every other processor in every round, so this is exactly the number
// of required-but-undelivered messages the run must exhibit.
func patternOmissions(pat *failures.Pattern) int {
	n, h := pat.N(), pat.Horizon()
	omitted := 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			for r := types.Round(1); int(r) <= h; r++ {
				if !pat.Delivers(types.ProcID(i), r, types.ProcID(j)) {
					omitted++
				}
			}
		}
	}
	return omitted
}

// TestResilientChaosTelemetryAccounting is the end-to-end consistency
// check between the two independent message accountings of a chaos
// run: the telemetry counters (incremented beside the send/receive
// paths) and the failures.Observation that reconstruction is built
// from. For the run's reconstructed pattern it must hold that
//
//	required − delivered (telemetry) = omissions(pattern) = Sent − Delivered (observation)
//
// The test also writes the metrics snapshot and the JSONL trace of the
// run as artifacts (EBA_TELEMETRY_ARTIFACT_DIR, or a test temp dir),
// which CI uploads.
func TestResilientChaosTelemetryAccounting(t *testing.T) {
	artifactDir := os.Getenv("EBA_TELEMETRY_ARTIFACT_DIR")
	if artifactDir == "" {
		artifactDir = t.TempDir()
	} else if err := os.MkdirAll(artifactDir, 0o755); err != nil {
		t.Fatalf("artifact dir: %v", err)
	}
	traceFile, err := os.Create(filepath.Join(artifactDir, "chaos_trace.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	tracer := telemetry.SetTraceWriter(traceFile)
	defer func() {
		telemetry.SetTraceWriter(nil)
		traceFile.Close()
	}()

	params := types.Params{N: 4, T: 2}
	const h = 3
	proto := fip.WireProtocol(protocols.Chain0SyntacticPair())
	plan, err := chaos.New(failures.Omission, params, h, 7, chaos.Drop, chaos.Delay, chaos.Kill)
	if err != nil {
		t.Fatal(err)
	}
	cfg := types.ConfigFromBits(params.N, 0b0111)

	// The retry-on-transient-reconstruction-failure loop of runVerified,
	// inlined so the counter baselines are re-read per attempt (a failed
	// attempt still increments the counters).
	reg := telemetry.Default()
	var (
		tr                 *sim.Trace
		reqDelta, delDelta uint64
	)
	deadline := testDeadline
	for attempt := 1; ; attempt++ {
		req0 := reg.Counter("eba_net_messages_required_total").Value()
		del0 := reg.Counter("eba_net_messages_delivered_total").Value()
		var err error
		tr, err = RunResilient(proto, params, cfg, Options{Plan: plan, Deadline: deadline})
		if err != nil {
			var rerr *ReconstructionError
			if errors.As(err, &rerr) && attempt < 3 {
				t.Logf("attempt %d (deadline %v): %v — retrying", attempt, deadline, err)
				deadline *= 2
				continue
			}
			t.Fatalf("RunResilient: %v (plan %s)", err, plan)
		}
		if err := VerifyReconstruction(proto, params, tr); err != nil {
			t.Fatal(err)
		}
		reqDelta = reg.Counter("eba_net_messages_required_total").Value() - req0
		delDelta = reg.Counter("eba_net_messages_delivered_total").Value() - del0
		break
	}

	// Telemetry vs observation: same counts from independent call sites.
	if int(reqDelta) != tr.Sent || int(delDelta) != tr.Delivered {
		t.Errorf("telemetry counted required=%d delivered=%d; observation counted %d/%d",
			reqDelta, delDelta, tr.Sent, tr.Delivered)
	}
	// Telemetry vs reconstructed pattern: the counter difference is the
	// pattern's omission count.
	if want := patternOmissions(tr.Pattern); int(reqDelta-delDelta) != want {
		t.Errorf("telemetry shows %d omissions (required−delivered), reconstructed pattern %s implies %d",
			reqDelta-delDelta, tr.Pattern, want)
	}

	// Flush the trace and make sure it parses (round-trip), then write
	// the metrics snapshot artifact.
	telemetry.SetTraceWriter(nil)
	if err := tracer.Err(); err != nil {
		t.Fatalf("trace writer: %v", err)
	}
	if err := traceFile.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.Open(filepath.Join(artifactDir, "chaos_trace.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	events, err := telemetry.ReadEvents(raw)
	if err != nil {
		t.Fatalf("trace does not parse: %v", err)
	}
	var sawRun bool
	for _, ev := range events {
		if ev.Name == "net.run_resilient" {
			sawRun = true
		}
	}
	if !sawRun {
		t.Errorf("trace has no net.run_resilient span (%d events)", len(events))
	}

	snapFile, err := os.Create(filepath.Join(artifactDir, "chaos_metrics.prom"))
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Snapshot().WritePrometheus(snapFile); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if err := snapFile.Close(); err != nil {
		t.Fatal(err)
	}
}
