package nettransport

// Property coverage for the receiving- and general-omission
// reconstruction: every seeded chaos run must reconstruct to a legal,
// canonical pattern of its mode within the fault bound, the pattern
// must replay identically on the deterministic engine, and an
// independent reconstruction from the harness's own Observation must
// agree with the engine's — drop for drop.

import (
	"errors"
	"testing"

	"github.com/eventual-agreement/eba/internal/chaos"
	"github.com/eventual-agreement/eba/internal/failures"
	"github.com/eventual-agreement/eba/internal/fip"
	"github.com/eventual-agreement/eba/internal/protocols"
	"github.com/eventual-agreement/eba/internal/sim"
	"github.com/eventual-agreement/eba/internal/types"
)

func TestNewModeChaosReconstructionProperty(t *testing.T) {
	proto := fip.WireProtocol(protocols.Chain0SyntacticPair())
	params := types.Params{N: 3, T: 1}
	const h = 2
	cfg := types.ConfigFromBits(3, 0b011)
	seeds := []int64{1, 2, 3, 4, 5, 6}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, mode := range []failures.Mode{failures.ReceivingOmission, failures.GeneralOmission} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			t.Parallel()
			drops := 0
			for _, seed := range seeds {
				plan, err := chaos.New(mode, params, h, seed)
				if err != nil {
					t.Fatal(err)
				}
				var tr *sim.Trace
				var obs *failures.Observation
				deadline := testDeadline
				for attempt := 1; ; attempt++ {
					obs = failures.NewObservation(params.N, h)
					got, err := RunResilient(proto, params, cfg, Options{Plan: plan, Deadline: deadline, Observation: obs})
					if err != nil {
						var rerr *ReconstructionError
						if errors.As(err, &rerr) && attempt < 3 {
							t.Logf("seed %d attempt %d: %v — retrying", seed, attempt, err)
							deadline *= 2
							continue
						}
						t.Fatalf("seed %d: RunResilient: %v (plan %s)", seed, err, plan)
					}
					tr = got
					break
				}
				pat := tr.Pattern
				if pat.Mode() != mode {
					t.Fatalf("seed %d: reconstructed mode %v, want %v", seed, pat.Mode(), mode)
				}
				if err := pat.CheckBound(params.T); err != nil {
					t.Fatalf("seed %d: reconstructed pattern exceeds bound: %v", seed, err)
				}
				if !pat.Canonical() {
					t.Fatalf("seed %d: reconstructed pattern not canonical: %s", seed, pat)
				}
				// Independent reconstruction from the same observation
				// must agree with the engine's, and every observed drop
				// must be a non-delivery of the pattern (and vice versa
				// for required messages).
				again, err := obs.Reconstruct(mode)
				if err != nil {
					t.Fatalf("seed %d: independent reconstruction: %v", seed, err)
				}
				if again.Key() != pat.Key() {
					t.Fatalf("seed %d: independent reconstruction %s != engine's %s", seed, again, pat)
				}
				for sender, omit := range obs.Omissions() {
					for idx, dsts := range omit {
						for _, dst := range dsts.Members() {
							drops++
							if pat.Delivers(sender, types.Round(idx+1), dst) {
								t.Fatalf("seed %d: drop %d→%d at round %d not reflected in pattern %s",
									seed, sender, dst, idx+1, pat)
							}
						}
					}
				}
				if err := VerifyReconstruction(proto, params, tr); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
			// The property is vacuous if chaos never dropped anything.
			if drops == 0 {
				t.Fatalf("no seed in %v produced a drop in %s mode", seeds, mode)
			}
		})
	}
}
