package nettransport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"github.com/eventual-agreement/eba/internal/failures"
	"github.com/eventual-agreement/eba/internal/types"
)

// codecErr reports whether err is one of the codec's typed errors (or
// a clean EOF, legal between frames). Anything else leaking out of the
// decoder on hostile input is a bug.
func codecErr(err error) bool {
	return err == io.EOF ||
		errors.Is(err, ErrFrameTooLarge) ||
		errors.Is(err, ErrTruncatedFrame) ||
		errors.Is(err, ErrBadFrame)
}

// FuzzFrameCodec feeds arbitrary bytes to the classic frame decoder:
// every frame it accepts must survive an encode/decode round trip, and
// every rejection must carry one of the typed codec errors.
func FuzzFrameCodec(f *testing.F) {
	var seed bytes.Buffer
	writeFrame(&seed, nil)
	writeFrame(&seed, []byte{})
	writeFrame(&seed, []byte("hello"))
	f.Add(seed.Bytes())
	f.Add([]byte{flagPayload, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02}) // overflowing varint
	f.Add([]byte{0xff})                                                                    // unknown flag
	f.Add([]byte{flagPayload, 5, 1, 2})                                                    // truncated payload
	f.Add(append([]byte{flagPayload, 0xa0, 0x8d, 0x06}, make([]byte, 64)...))              // > maxFrame
	// New-mode corpus seeds: the frames a receiving- or general-omission
	// run ships are opaque payloads here, but their pattern keys are the
	// kind of structured bytes those runs put on the wire.
	var modeSeed bytes.Buffer
	writeFrame(&modeSeed, []byte(failures.Deaf(failures.ReceivingOmission, 3, 2, 1, 1).Key()))
	writeFrame(&modeSeed, []byte(failures.Deaf(failures.GeneralOmission, 3, 2, 2, 1).Key()))
	f.Add(modeSeed.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			payload, err := readFrame(r)
			if err != nil {
				if !codecErr(err) {
					t.Fatalf("untyped decode error: %v", err)
				}
				return
			}
			if len(payload) > maxFrame {
				t.Fatalf("decoded %d bytes past the frame limit", len(payload))
			}
			// Whatever decoded must round-trip through the encoder.
			var buf bytes.Buffer
			if err := writeFrame(&buf, payload); err != nil {
				t.Fatal(err)
			}
			again, err := readFrame(&buf)
			if err != nil {
				t.Fatalf("re-decode: %v", err)
			}
			if (payload == nil) != (again == nil) || !bytes.Equal(payload, again) {
				t.Fatalf("round trip: %x -> %x", payload, again)
			}
		}
	})
}

// FuzzRoundFrameCodec round-trips the resilient engine's round-tagged
// frames and checks the decoder rejects hostile streams with typed
// errors only.
func FuzzRoundFrameCodec(f *testing.F) {
	f.Add(uint32(1), []byte("view"), false)
	f.Add(uint32(0), []byte(nil), true)
	f.Add(uint32(1<<31), bytes.Repeat([]byte{0xab}, 512), false)
	f.Add(uint32(2), []byte(failures.Deaf(failures.ReceivingOmission, 4, 3, 2, 1).Key()), false)
	f.Fuzz(func(t *testing.T, round uint32, payload []byte, null bool) {
		if null {
			payload = nil
		}
		var buf bytes.Buffer
		if err := writeRoundFrame(&buf, types.Round(round), payload); err != nil {
			t.Fatal(err)
		}
		encoded := buf.Bytes()

		r, got, err := readRoundFrame(&buf)
		if err != nil {
			t.Fatalf("round-trip decode: %v", err)
		}
		if r != types.Round(round) {
			t.Fatalf("round %d -> %d", round, r)
		}
		if (payload == nil) != (got == nil) || !bytes.Equal(payload, got) {
			t.Fatalf("payload %x -> %x", payload, got)
		}

		// Every strict prefix is a truncated frame (or a clean EOF when
		// the prefix is empty) — never a panic or an untyped error.
		for cut := 0; cut < len(encoded); cut++ {
			_, _, err := readRoundFrame(bytes.NewReader(encoded[:cut]))
			if err == nil {
				t.Fatalf("prefix %d/%d decoded successfully", cut, len(encoded))
			}
			if !codecErr(err) {
				t.Fatalf("prefix %d/%d: untyped error %v", cut, len(encoded), err)
			}
		}
	})
}

// The maxFrame boundary is exact: a declared length of maxFrame is
// readable, maxFrame+1 is ErrFrameTooLarge before any payload read.
func TestFrameSizeBoundary(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, make([]byte, maxFrame)); err != nil {
		t.Fatal(err)
	}
	payload, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(payload) != maxFrame {
		t.Fatalf("len = %d", len(payload))
	}

	var big bytes.Buffer
	big.WriteByte(flagPayload)
	var hdr [binary.MaxVarintLen64]byte
	big.Write(hdr[:binary.PutUvarint(hdr[:], maxFrame+1)])
	if _, err := readFrame(&big); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}

	// Same boundary through the round-tagged decoder.
	var rbig bytes.Buffer
	rbig.Write(hdr[:binary.PutUvarint(hdr[:], 2)]) // round
	rbig.WriteByte(flagPayload)
	rbig.Write(hdr[:binary.PutUvarint(hdr[:], maxFrame+1)])
	if _, _, err := readRoundFrame(&rbig); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("round frame err = %v, want ErrFrameTooLarge", err)
	}
}
