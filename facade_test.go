package eba_test

import (
	"testing"

	eba "github.com/eventual-agreement/eba"
)

// TestFacadeCoordination exercises the Section 7 generalization
// through the public API.
func TestFacadeCoordination(t *testing.T) {
	sys, err := eba.NewSystem(eba.Params{N: 3, T: 1}, eba.Crash, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	e := eba.NewEvaluator(sys)
	spec := eba.CoordinationSpec{
		Name: "biased",
		Phi0: eba.Exists0(),
		Phi1: eba.Not(eba.Exists0()),
	}
	if err := spec.Validate(e); err != nil {
		t.Fatal(err)
	}
	opt := eba.TwoStepSpec(e, spec, eba.NeverDecide())
	if err := eba.CheckWeakAgreement(sys, opt); err != nil {
		t.Fatal(err)
	}
	if err := eba.CheckEnabling(e, spec, opt); err != nil {
		t.Fatal(err)
	}
	if ok, reason := eba.IsOptimalSpec(e, spec, opt); !ok {
		t.Fatal(reason)
	}
	// EBASpec matches the specialized path.
	if ok, _ := eba.IsOptimalSpec(e, eba.EBASpec(), eba.TwoStep(e, eba.NeverDecide())); !ok {
		t.Fatal("EBA spec oracle disagrees")
	}
}

// TestFacadeParser parses and evaluates through the public API.
func TestFacadeParser(t *testing.T) {
	f, err := eba.ParseFormula("Cbox E0 -> C E0")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := eba.NewSystem(eba.Params{N: 3, T: 1}, eba.Crash, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !eba.NewEvaluator(sys).Valid(f) {
		t.Fatal("C□ ⇒ C should be valid")
	}
	if _, err := eba.ParseFormula("nonsense("); err == nil {
		t.Fatal("bad formula accepted")
	}
}

// TestFacadeTemporalAndSBA touches the remaining wrappers: temporal
// operators, the SBA helpers, halting, F0, TCP engine, observers.
func TestFacadeTemporalAndSBA(t *testing.T) {
	params := eba.Params{N: 3, T: 1}
	sys, err := eba.NewSystem(params, eba.Crash, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	e := eba.NewEvaluator(sys)

	nf := eba.Nonfaulty()
	hier := eba.Implies(eba.Future(eba.C(nf, eba.Exists1())), eba.CDiamond(nf, eba.Exists1()))
	if !e.Valid(hier) {
		t.Fatal("◇C ⇒ C◇ should hold")
	}
	if !e.Valid(eba.Implies(eba.Henceforth(eba.Exists0()), eba.Exists0())) {
		t.Fatal("□ ⇒ present should hold")
	}
	if !e.Valid(eba.EDiamond(nf, eba.Or(eba.Exists0(), eba.Exists1()))) {
		t.Fatal("everyone eventually believes a tautology-ish fact")
	}

	f0 := eba.F0Pair(e)
	if err := eba.CheckWeakAgreement(sys, f0); err != nil {
		t.Fatal(err)
	}
	if _, dh := eba.DecisionHistogram(sys, f0)[eba.Round(0)]; !dh {
		// F0 decides some runs at time 0 (unanimous visible facts may
		// take longer; just exercise the call).
		_ = dh
	}
	if _, all := eba.MaxNonfaultyDecisionRound(sys, eba.P0OptPair()); !all {
		t.Fatal("P0opt decides everywhere")
	}

	// Halting variant runs and decides.
	tr, err := eba.Run(eba.P0OptHalting(), params, eba.ConfigFromBits(3, 0b110), eba.FailureFree(eba.Crash, 3, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !tr.NonfaultyDecided() {
		t.Fatal("halting variant undecided")
	}

	// TCP engine through the facade.
	trTCP, err := eba.RunTCP(eba.FIPWire(eba.P0OptPair()), params,
		eba.ConfigFromBits(3, 0b110), eba.Silent(eba.Crash, 3, 3, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !trTCP.NonfaultyDecided() {
		t.Fatal("TCP run undecided")
	}

	// Observer through the facade.
	count := 0
	obs := countObs{onMsg: func() { count++ }}
	if _, err := eba.RunObserved(eba.P0Opt(), params, eba.ConfigFromBits(3, 0), eba.FailureFree(eba.Crash, 3, 2), obs); err != nil {
		t.Fatal(err)
	}
	if count != 3*2*2 {
		t.Fatalf("observer saw %d messages", count)
	}

	// SBA helpers.
	outs := eba.SBAOutcomes(e)
	if err := eba.CheckSBAOutcomes(sys, outs); err != nil {
		t.Fatal(err)
	}
}

type countObs struct{ onMsg func() }

func (o countObs) RoundBegin(eba.Round)                            {}
func (o countObs) Message(eba.Round, eba.ProcID, eba.ProcID, bool) { o.onMsg() }
func (o countObs) Decide(eba.Round, eba.ProcID, eba.Value)         {}

// TestFacadeConformance runs a one-scenario conformance pass through
// the public API and checks the corpus reader round-trips records.
func TestFacadeConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("live-runtime scenario; skipped in -short")
	}
	res, err := eba.RunConformance(eba.ConformOptions{Seed: 2, Count: 1, CacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations through facade: %+v", res.Violations)
	}
	if res.Scenarios != 1 || res.Checks == 0 {
		t.Fatalf("unexpected result: %+v", res)
	}
	if _, err := eba.ReadConformCorpus("does-not-exist.jsonl"); err == nil {
		t.Fatal("expected error reading a missing corpus")
	}
}
