// Command ebarun executes one run of a protocol and prints the
// decisions. It is the quickest way to watch the paper's protocols
// behave under injected failures, on either engine.
//
// Usage examples:
//
//	ebarun -protocol p0opt -mode crash -config 0111 -silent 0@2
//	ebarun -protocol chain0 -mode omission -config 0111 -except 0@2-3 -live
//	ebarun -protocol chain0 -mode receiving-omission -config 0111 -deaf 2@1
//	ebarun -protocol floodset -config 1010
//
// Failure specs (comma-separated, all named processors are faulty):
//
//	-silent p@k     processor p sends nothing from round k on
//	                (modes with sending faults)
//	-deaf p@k       processor p receives nothing from round k on
//	                (receiving-omission and general-omission modes)
//	-except p@m-d   p is silent except one delivery to d in round m
//	                (omission mode only)
//
// Chaos mode runs the protocol on the resilient TCP runtime with
// seeded network-fault injection instead of a scripted pattern; the
// effective pattern is reconstructed from what the network actually
// delivered and cross-checked against the deterministic engine:
//
//	ebarun -protocol chain0 -mode omission -config 0111 -chaos auto -seed 7
//	ebarun -protocol p0opt -config 0111 -chaos drop,kill -deadline 300ms
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	eba "github.com/eventual-agreement/eba"
	"github.com/eventual-agreement/eba/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ebarun:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		protoName = flag.String("protocol", "p0opt", "p0 | p1 | p0opt | chain0 | floodset")
		modeName  = flag.String("mode", "crash", "crash | omission | receiving-omission | general-omission")
		config    = flag.String("config", "0111", "initial values, one digit per processor")
		tFlag     = flag.Int("t", -1, "fault bound (default: number of faulty processors, min 1)")
		horizon   = flag.Int("h", 0, "rounds to run (default: t+2)")
		silent    = flag.String("silent", "", "silent failures, e.g. 2@1,3@2")
		deaf      = flag.String("deaf", "", "deaf failures (receiving modes), e.g. 2@1")
		except    = flag.String("except", "", "silent-except-one failures, e.g. 0@2-1")
		live      = flag.Bool("live", false, "run on the goroutine transport instead of the deterministic engine")
		verbose   = flag.Bool("verbose", false, "trace every round and message (deterministic engine only)")
		chaosSpec = flag.String("chaos", "", `run on the resilient TCP runtime with seeded fault injection: "auto" or a mechanism list, e.g. "drop,delay,kill"`)
		seed      = flag.Int64("seed", 1, "chaos plan seed (with -chaos)")
		deadline  = flag.Duration("deadline", 0, "per-round receive deadline (with -chaos; 0 = default)")
		parallel  = flag.Int("parallel", 0, "worker bound for the knowledge audit (0 = all cores, 1 = sequential)")
		tel       = telemetry.BindFlags(flag.CommandLine)
	)
	flag.Parse()
	if err := tel.Start(); err != nil {
		return err
	}
	defer tel.Close()
	eba.SetParallelism(*parallel)
	if *verbose && *live {
		return fmt.Errorf("-verbose requires the deterministic engine (drop -live)")
	}
	if *chaosSpec != "" {
		if *live || *verbose {
			return fmt.Errorf("-chaos picks its own engine (drop -live/-verbose)")
		}
		if *silent != "" || *deaf != "" || *except != "" {
			return fmt.Errorf("-chaos draws failures from the seed (drop -silent/-deaf/-except)")
		}
	}

	cfg, err := parseConfig(*config)
	if err != nil {
		return err
	}
	n := cfg.N()

	mode, err := eba.ParseMode(*modeName)
	if err != nil {
		return err
	}

	proto, err := pickProtocol(*protoName)
	if err != nil {
		return err
	}

	specs, err := parseFailures(*silent, *deaf, *except, n)
	if err != nil {
		return err
	}
	if len(specs.except) > 0 && mode != eba.Omission {
		return fmt.Errorf("-except requires -mode omission")
	}
	if len(specs.silents) > 0 && !mode.HasSendingFaults() {
		return fmt.Errorf("-silent requires a mode with sending faults (use -deaf in %s mode)", mode)
	}
	if len(specs.deafs) > 0 && !mode.HasReceivingFaults() {
		return fmt.Errorf("-deaf requires -mode receiving-omission or general-omission")
	}

	t := *tFlag
	if t < 0 {
		t = len(specs.faulty)
		if t == 0 {
			t = 1
		}
	}
	h := *horizon
	if h == 0 {
		h = t + 2
	}

	if *chaosSpec != "" {
		return runChaos(*protoName, mode, cfg, t, h, *chaosSpec, *seed, *deadline)
	}

	pat, err := buildPattern(mode, n, h, specs)
	if err != nil {
		return err
	}

	params := eba.Params{N: n, T: t}
	engineName := "deterministic engine"
	if *live {
		engineName = "goroutine transport"
	}
	fmt.Printf("%s on %s | n=%d t=%d h=%d | config %s | %s\n",
		proto.Name(), engineName, n, t, h, cfg, pat)

	var tr *eba.Trace
	switch {
	case *live:
		tr, err = eba.RunLive(proto, params, cfg, pat)
	case *verbose:
		tr, err = eba.RunObserved(proto, params, cfg, pat,
			eba.TeeObservers(&eba.TextObserver{W: os.Stdout}, eba.NewMetricsObserver()))
	default:
		tr, err = eba.RunObserved(proto, params, cfg, pat, eba.NewMetricsObserver())
	}
	if err != nil {
		return err
	}
	for p := eba.ProcID(0); p < eba.ProcID(n); p++ {
		status := "faulty"
		if pat.Nonfaulty().Contains(p) {
			status = "nonfaulty"
		}
		if v, at, ok := tr.DecisionOf(p); ok {
			fmt.Printf("  proc %d (%s): decides %s at time %d\n", p, status, v, at)
		} else {
			fmt.Printf("  proc %d (%s): undecided by time %d\n", p, status, h)
		}
	}
	if !tr.NonfaultyDecided() {
		fmt.Println("  warning: some nonfaulty processor is undecided within the horizon")
	}
	return nil
}

// runChaos executes the protocol on the resilient TCP runtime under a
// seeded chaos plan, prints the reconstructed failure pattern, and
// cross-checks the live trace against the deterministic engine.
func runChaos(protoName string, mode eba.Mode, cfg eba.Config, t, h int, spec string, seed int64, deadline time.Duration) error {
	pair, err := pickPair(protoName, t)
	if err != nil {
		return err
	}
	mechs, err := parseMechanisms(spec)
	if err != nil {
		return err
	}
	params := eba.Params{N: cfg.N(), T: t}
	plan, err := eba.NewChaosPlan(mode, params, h, seed, mechs...)
	if err != nil {
		return err
	}
	proto := eba.FIPWire(pair)
	fmt.Printf("%s on resilient TCP runtime | n=%d t=%d h=%d | config %s\n%s\n",
		proto.Name(), cfg.N(), t, h, cfg, plan)

	tr, err := eba.RunResilient(proto, params, cfg, eba.ResilientOptions{Plan: plan, Deadline: deadline})
	if err != nil {
		return err
	}
	for p := eba.ProcID(0); p < eba.ProcID(cfg.N()); p++ {
		status := "faulty"
		if tr.Pattern.Nonfaulty().Contains(p) {
			status = "nonfaulty"
		}
		if v, at, ok := tr.DecisionOf(p); ok {
			fmt.Printf("  proc %d (%s): decides %s at time %d\n", p, status, v, at)
		} else {
			fmt.Printf("  proc %d (%s): undecided by time %d\n", p, status, h)
		}
	}
	fmt.Printf("reconstructed %s (sent %d, delivered %d)\n", tr.Pattern, tr.Sent, tr.Delivered)

	// Replay on the deterministic engine with a metrics observer
	// attached: the same cross-check VerifyResilient performs, but the
	// replay also feeds the sim layer of the telemetry snapshot.
	replay, err := eba.RunObserved(proto, params, cfg, tr.Pattern, eba.NewMetricsObserver())
	if err != nil {
		return fmt.Errorf("replay under reconstructed pattern failed: %w", err)
	}
	if d := eba.DiffTraces(tr, replay); d != "" {
		return fmt.Errorf("live run diverges from deterministic replay under reconstructed pattern %s: %s", tr.Pattern, d)
	}
	fmt.Println("deterministic replay under the reconstructed pattern: identical trace")

	return auditChaos(pair, params, mode, cfg, h, tr)
}

// auditChaos model-checks the reconstructed run: it enumerates the
// two-pattern system {failure-free, reconstructed} and (a) reports
// where continual and eventual common knowledge of ∃0 hold along the
// reconstructed run, (b) cross-checks every live decision against the
// model checker's FIP decision for the same pair — sound because the
// views of a full-information protocol are independent of the decision
// rule (Proposition 2.2), so the enumerated run's states are exactly
// the live run's states.
func auditChaos(pair eba.Pair, params eba.Params, mode eba.Mode, cfg eba.Config, h int, tr *eba.Trace) error {
	pats := []*eba.Pattern{eba.FailureFree(mode, params.N, h)}
	if tr.Pattern.Key() != pats[0].Key() {
		pats = append(pats, tr.Pattern)
	}
	sys, err := eba.NewSystemFromPatterns(params, mode, h, pats)
	if err != nil {
		return fmt.Errorf("knowledge audit: %w", err)
	}
	e := eba.NewEvaluator(sys)
	run, ok := sys.FindRun(cfg, tr.Pattern.Key())
	if !ok {
		return fmt.Errorf("knowledge audit: reconstructed run missing from audit system")
	}

	nf := eba.Nonfaulty()
	firstHold := func(f eba.Formula) string {
		tbl := e.Eval(f)
		for m := 0; m <= h; m++ {
			if tbl.Get(sys.PointIndex(eba.Point{Run: run.Index, Time: eba.Round(m)})) {
				return fmt.Sprintf("from time %d", m)
			}
		}
		return "never (within horizon)"
	}
	fmt.Printf("knowledge audit over {failure-free, reconstructed} (%d runs, %d points, %d views):\n",
		sys.NumRuns(), sys.NumPoints(), sys.Interner.Size())
	fmt.Printf("  C□_N(∃0) along the reconstructed run: %s\n", firstHold(eba.CBox(nf, eba.Exists0())))
	fmt.Printf("  C◇_N(∃0) along the reconstructed run: %s\n", firstHold(eba.CDiamond(nf, eba.Exists0())))

	for p := eba.ProcID(0); p < eba.ProcID(params.N); p++ {
		mv, mat, mok := eba.DecisionAt(sys, pair, run, p)
		lv, lat, lok := tr.DecisionOf(p)
		if mok != lok || (mok && (mv != lv || mat != lat)) {
			return fmt.Errorf("knowledge audit: proc %d live decision (%s@%d, decided=%v) != model checker (%s@%d, decided=%v)",
				p, lv, lat, lok, mv, mat, mok)
		}
	}
	fmt.Println("  live decisions match the model checker's FIP decisions point for point")
	return nil
}

// pickPair maps a protocol name to its decision pair — the form the
// wire-format full-information adapter (and hence the TCP engines)
// can run.
func pickPair(name string, t int) (eba.Pair, error) {
	switch strings.ToLower(name) {
	case "p0":
		return eba.P0Pair(t), nil
	case "p1":
		return eba.P1Pair(t), nil
	case "p0opt":
		return eba.P0OptPair(), nil
	case "chain0":
		return eba.Chain0Pair(), nil
	case "floodset":
		return eba.Pair{}, fmt.Errorf("floodset is a simultaneous-agreement protocol with no decision pair; -chaos needs p0|p1|p0opt|chain0")
	default:
		return eba.Pair{}, fmt.Errorf("unknown protocol %q", name)
	}
}

// parseMechanisms parses the -chaos value: "auto" (mode defaults) or a
// comma-separated mechanism list.
func parseMechanisms(spec string) ([]eba.ChaosMechanism, error) {
	if strings.EqualFold(strings.TrimSpace(spec), "auto") {
		return nil, nil
	}
	var out []eba.ChaosMechanism
	for _, part := range splitList(spec) {
		m, err := eba.ParseChaosMechanism(part)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -chaos spec (want \"auto\" or a mechanism list)")
	}
	return out, nil
}

func parseConfig(s string) (eba.Config, error) {
	vals := make([]eba.Value, len(s))
	for i, c := range s {
		switch c {
		case '0':
			vals[i] = eba.Zero
		case '1':
			vals[i] = eba.One
		default:
			return nil, fmt.Errorf("config digit %q (want 0/1)", c)
		}
	}
	return eba.NewConfig(vals...)
}

func pickProtocol(name string) (eba.Protocol, error) {
	switch strings.ToLower(name) {
	case "p0":
		return eba.P0(), nil
	case "p1":
		return eba.P1(), nil
	case "p0opt":
		return eba.P0Opt(), nil
	case "chain0":
		return eba.Chain0(), nil
	case "floodset":
		return eba.FloodSet(), nil
	default:
		return nil, fmt.Errorf("unknown protocol %q", name)
	}
}

type failureSpecs struct {
	faulty  map[eba.ProcID]bool
	silents map[eba.ProcID]int // proc -> first silent round
	deafs   map[eba.ProcID]int // proc -> first deaf round
	except  map[eba.ProcID][2]int
}

func parseFailures(silent, deaf, except string, n int) (*failureSpecs, error) {
	specs := &failureSpecs{
		faulty:  make(map[eba.ProcID]bool),
		silents: make(map[eba.ProcID]int),
		deafs:   make(map[eba.ProcID]int),
		except:  make(map[eba.ProcID][2]int),
	}
	addProc := func(p int) (eba.ProcID, error) {
		if p < 0 || p >= n {
			return 0, fmt.Errorf("processor %d out of range [0,%d)", p, n)
		}
		id := eba.ProcID(p)
		if specs.faulty[id] {
			return 0, fmt.Errorf("processor %d appears in two failure specs", p)
		}
		specs.faulty[id] = true
		return id, nil
	}
	for _, part := range splitList(silent) {
		var p, k int
		if _, err := fmt.Sscanf(part, "%d@%d", &p, &k); err != nil {
			return nil, fmt.Errorf("bad -silent entry %q (want p@k)", part)
		}
		if k < 1 {
			return nil, fmt.Errorf("silent round %d < 1", k)
		}
		id, err := addProc(p)
		if err != nil {
			return nil, err
		}
		specs.silents[id] = k
	}
	for _, part := range splitList(deaf) {
		var p, k int
		if _, err := fmt.Sscanf(part, "%d@%d", &p, &k); err != nil {
			return nil, fmt.Errorf("bad -deaf entry %q (want p@k)", part)
		}
		if k < 1 {
			return nil, fmt.Errorf("deaf round %d < 1", k)
		}
		id, err := addProc(p)
		if err != nil {
			return nil, err
		}
		specs.deafs[id] = k
	}
	for _, part := range splitList(except) {
		var p, m, d int
		if _, err := fmt.Sscanf(part, "%d@%d-%d", &p, &m, &d); err != nil {
			return nil, fmt.Errorf("bad -except entry %q (want p@m-d)", part)
		}
		id, err := addProc(p)
		if err != nil {
			return nil, err
		}
		if d < 0 || d >= n {
			return nil, fmt.Errorf("destination %d out of range", d)
		}
		if m < 1 {
			return nil, fmt.Errorf("delivery round %d < 1", m)
		}
		specs.except[id] = [2]int{m, d}
	}
	return specs, nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func buildPattern(mode eba.Mode, n, h int, specs *failureSpecs) (*eba.Pattern, error) {
	var faulty eba.ProcSet
	behavior := make(map[eba.ProcID]*eba.Behavior)
	full := func(p eba.ProcID) eba.ProcSet {
		var s eba.ProcSet
		for q := 0; q < n; q++ {
			if eba.ProcID(q) != p {
				s = s.Add(eba.ProcID(q))
			}
		}
		return s
	}
	for p, k := range specs.silents {
		faulty = faulty.Add(p)
		b := &eba.Behavior{Omit: make([]eba.ProcSet, h)}
		for r := k; r <= h; r++ {
			b.Omit[r-1] = full(p)
		}
		behavior[p] = b
	}
	for p, k := range specs.deafs {
		faulty = faulty.Add(p)
		b := &eba.Behavior{Recv: make([]eba.ProcSet, h)}
		for r := k; r <= h; r++ {
			b.Recv[r-1] = full(p)
		}
		behavior[p] = b
	}
	for p, md := range specs.except {
		faulty = faulty.Add(p)
		b := &eba.Behavior{Omit: make([]eba.ProcSet, h)}
		for r := 1; r <= h; r++ {
			b.Omit[r-1] = full(p)
			if r == md[0] {
				b.Omit[r-1] = b.Omit[r-1].Remove(eba.ProcID(md[1]))
			}
		}
		behavior[p] = b
	}
	return eba.NewPattern(mode, n, h, faulty, behavior)
}
