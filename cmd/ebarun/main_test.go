package main

import (
	"testing"
	"time"

	eba "github.com/eventual-agreement/eba"
)

func TestParseConfig(t *testing.T) {
	cfg, err := parseConfig("0110")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.N() != 4 || cfg[0] != eba.Zero || cfg[1] != eba.One {
		t.Fatalf("cfg = %v", cfg)
	}
	if _, err := parseConfig("01x0"); err == nil {
		t.Fatal("bad digit accepted")
	}
	if _, err := parseConfig("1"); err == nil {
		t.Fatal("n=1 accepted")
	}
}

func TestPickProtocol(t *testing.T) {
	for _, name := range []string{"p0", "P1", "p0opt", "chain0", "floodset"} {
		if _, err := pickProtocol(name); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := pickProtocol("nope"); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestParseFailures(t *testing.T) {
	specs, err := parseFailures("2@1,3@2", "1@2", "0@2-1", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs.faulty) != 4 || specs.silents[2] != 1 || specs.silents[3] != 2 {
		t.Fatalf("specs = %+v", specs)
	}
	if specs.deafs[1] != 2 {
		t.Fatalf("deafs = %v", specs.deafs)
	}
	if specs.except[0] != [2]int{2, 1} {
		t.Fatalf("except = %v", specs.except[0])
	}
	bad := []struct{ silent, deaf, except string }{
		{"9@1", "", ""},      // out of range
		{"1@0", "", ""},      // round < 1
		{"x@1", "", ""},      // malformed
		{"", "9@1", ""},      // deaf out of range
		{"", "1@0", ""},      // deaf round < 1
		{"", "x@1", ""},      // deaf malformed
		{"", "", "0@1-9"},    // dst out of range
		{"", "", "0@0-1"},    // round < 1
		{"", "", "junk"},     // malformed
		{"1@1", "", "1@2-0"}, // duplicate processor
		{"1@1", "1@2", ""},   // duplicate across silent and deaf
	}
	for _, b := range bad {
		if _, err := parseFailures(b.silent, b.deaf, b.except, 4); err == nil {
			t.Fatalf("accepted silent=%q deaf=%q except=%q", b.silent, b.deaf, b.except)
		}
	}
}

func TestBuildPattern(t *testing.T) {
	specs, err := parseFailures("2@2", "", "0@1-3", 4)
	if err != nil {
		t.Fatal(err)
	}
	pat, err := buildPattern(eba.Omission, 4, 3, specs)
	if err != nil {
		t.Fatal(err)
	}
	if pat.Faulty() != eba.ProcSet(0b101) {
		t.Fatalf("faulty = %v", pat.Faulty())
	}
	// Processor 2 silent from round 2.
	if !pat.Delivers(2, 1, 0) || pat.Delivers(2, 2, 0) {
		t.Fatal("silent schedule wrong")
	}
	// Processor 0 delivers only to 3 in round 1.
	if !pat.Delivers(0, 1, 3) || pat.Delivers(0, 1, 1) || pat.Delivers(0, 2, 3) {
		t.Fatal("except schedule wrong")
	}

	// A deaf receiver is a receiving-omission pattern: processor 1
	// hears nobody from round 2 on, but still sends.
	specs, err = parseFailures("", "1@2", "", 4)
	if err != nil {
		t.Fatal(err)
	}
	pat, err = buildPattern(eba.ReceivingOmission, 4, 3, specs)
	if err != nil {
		t.Fatal(err)
	}
	if pat.Faulty() != eba.ProcSet(0b10) {
		t.Fatalf("faulty = %v", pat.Faulty())
	}
	if !pat.Delivers(0, 1, 1) || pat.Delivers(0, 2, 1) || !pat.Delivers(1, 2, 0) {
		t.Fatal("deaf schedule wrong")
	}
	// A sending mode must reject the Recv schedule.
	if _, err := buildPattern(eba.Omission, 4, 3, specs); err == nil {
		t.Fatal("Recv schedule accepted in sending-omission mode")
	}
}

func TestPickPair(t *testing.T) {
	for _, name := range []string{"p0", "P1", "p0opt", "chain0"} {
		if _, err := pickPair(name, 1); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := pickPair("floodset", 1); err == nil {
		t.Fatal("floodset accepted for chaos runs")
	}
	if _, err := pickPair("nope", 1); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestParseMechanisms(t *testing.T) {
	if mechs, err := parseMechanisms("auto"); err != nil || mechs != nil {
		t.Fatalf("auto -> %v, %v", mechs, err)
	}
	mechs, err := parseMechanisms("drop, delay ,kill")
	if err != nil {
		t.Fatal(err)
	}
	want := []eba.ChaosMechanism{eba.ChaosDrop, eba.ChaosDelay, eba.ChaosKill}
	if len(mechs) != len(want) {
		t.Fatalf("mechs = %v", mechs)
	}
	for i := range want {
		if mechs[i] != want[i] {
			t.Fatalf("mechs = %v", mechs)
		}
	}
	if _, err := parseMechanisms("drop,warp"); err == nil {
		t.Fatal("unknown mechanism accepted")
	}
	if _, err := parseMechanisms(" , "); err == nil {
		t.Fatal("empty list accepted")
	}
}

// End-to-end: a seeded chaos run through the CLI path completes and
// verifies against the deterministic engine.
func TestRunChaos(t *testing.T) {
	cfg, err := parseConfig("0111")
	if err != nil {
		t.Fatal(err)
	}
	if err := runChaos("chain0", eba.Omission, cfg, 2, 3, "drop,kill", 5, 200*time.Millisecond); err != nil {
		t.Fatal(err)
	}
}
