package main

import (
	"testing"

	eba "github.com/eventual-agreement/eba"
)

func TestParseConfig(t *testing.T) {
	cfg, err := parseConfig("0110")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.N() != 4 || cfg[0] != eba.Zero || cfg[1] != eba.One {
		t.Fatalf("cfg = %v", cfg)
	}
	if _, err := parseConfig("01x0"); err == nil {
		t.Fatal("bad digit accepted")
	}
	if _, err := parseConfig("1"); err == nil {
		t.Fatal("n=1 accepted")
	}
}

func TestPickProtocol(t *testing.T) {
	for _, name := range []string{"p0", "P1", "p0opt", "chain0", "floodset"} {
		if _, err := pickProtocol(name); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := pickProtocol("nope"); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestParseFailures(t *testing.T) {
	specs, err := parseFailures("2@1,3@2", "0@2-1", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs.faulty) != 3 || specs.silents[2] != 1 || specs.silents[3] != 2 {
		t.Fatalf("specs = %+v", specs)
	}
	if specs.except[0] != [2]int{2, 1} {
		t.Fatalf("except = %v", specs.except[0])
	}
	bad := []struct{ silent, except string }{
		{"9@1", ""},      // out of range
		{"1@0", ""},      // round < 1
		{"x@1", ""},      // malformed
		{"", "0@1-9"},    // dst out of range
		{"", "0@0-1"},    // round < 1
		{"", "junk"},     // malformed
		{"1@1", "1@2-0"}, // duplicate processor
	}
	for _, b := range bad {
		if _, err := parseFailures(b.silent, b.except, 4); err == nil {
			t.Fatalf("accepted silent=%q except=%q", b.silent, b.except)
		}
	}
}

func TestBuildPattern(t *testing.T) {
	specs, err := parseFailures("2@2", "0@1-3", 4)
	if err != nil {
		t.Fatal(err)
	}
	pat, err := buildPattern(eba.Omission, 4, 3, specs)
	if err != nil {
		t.Fatal(err)
	}
	if pat.Faulty() != eba.ProcSet(0b101) {
		t.Fatalf("faulty = %v", pat.Faulty())
	}
	// Processor 2 silent from round 2.
	if !pat.Delivers(2, 1, 0) || pat.Delivers(2, 2, 0) {
		t.Fatal("silent schedule wrong")
	}
	// Processor 0 delivers only to 3 in round 1.
	if !pat.Delivers(0, 1, 3) || pat.Delivers(0, 1, 1) || pat.Delivers(0, 2, 3) {
		t.Fatal("except schedule wrong")
	}
}
