// Command ebaq is a model-checking calculator for the paper's logic:
// it evaluates a formula at every point of a full-information system,
// reporting validity, the count of satisfying points, and a sample
// counterexample. It shares its query-execution path with the ebad
// daemon, so -cachedir reuses (and feeds) the same snapshot store.
//
// Formula syntax (see the knowledge package's Parse):
//
//	atoms:   E0 E1 initI=V nfI knowsI=V true false
//	boolean: ! & | -> <->  (parentheses group)
//	modal:   KI BI E C Cbox Cdia box dia alw ev
//
// Examples:
//
//	ebaq -f 'Cbox E0 -> C E0'                      # Sec 3.3: valid
//	ebaq -f 'C E0 -> Cbox E0'                      # ... the converse fails
//	ebaq -n 3 -t 1 -mode omission -f 'K0 E0 -> B0 E0'
//	ebaq -json -cachedir /tmp/eba -f 'knows1=0 -> K1 E0'
//
// With -server, the query goes to a running ebad daemon instead of
// being evaluated in-process, through the shared retrying client: 429
// and 503 sheds are retried with backoff, honoring Retry-After, until
// the retry budget runs out (tune with -retries/-retry-budget or the
// EBA_RETRY_MAX/EBA_RETRY_BUDGET environment variables):
//
//	ebaq -server http://localhost:8080 -f 'Cbox E0 -> C E0'
//
// -f repeats; multiple formulas against a -server go over the wire as
// one POST /v1/query/batch, which a clustered daemon fans out to the
// key's owners:
//
//	ebaq -server http://localhost:8080 -f 'Cbox E0 -> C E0' -f 'C E0 -> Cbox E0'
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/eventual-agreement/eba/internal/service"
	"github.com/eventual-agreement/eba/internal/store"
	"github.com/eventual-agreement/eba/internal/telemetry"
)

// formulaList collects repeated -f flags.
type formulaList []string

func (l *formulaList) String() string     { return fmt.Sprint(*l) }
func (l *formulaList) Set(s string) error { *l = append(*l, s); return nil }

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ebaq:", err)
		os.Exit(1)
	}
}

func run() error {
	var formulas formulaList
	var (
		n        = flag.Int("n", 3, "processors")
		t        = flag.Int("t", 1, "fault bound")
		modeName = flag.String("mode", "crash", "crash | omission | receiving-omission | general-omission")
		h        = flag.Int("h", 0, "horizon (default t+2)")
		limit    = flag.Int("limit", 2_000_000, "omission pattern limit")
		jsonOut  = flag.Bool("json", false, "emit the query result as JSON")
		cachedir = flag.String("cachedir", "", "snapshot store directory (empty = no persistence)")
		parallel = flag.Int("parallel", 0, "worker bound for cold enumeration and evaluation (0 = all cores, 1 = sequential)")
		server   = flag.String("server", "", "query a running ebad daemon at this base URL instead of evaluating in-process")
		retries  = flag.Int("retries", -1, "server mode: max retries after the first attempt (-1 = default/EBA_RETRY_MAX)")
		budget   = flag.Duration("retry-budget", 0, "server mode: wall-clock budget across attempts (0 = default/EBA_RETRY_BUDGET)")
		traceID  = flag.String("trace-id", "", "server mode: send this trace ID with the query (default: minted per query), for correlating with the daemon's /debug/trace/{id}")
	)
	flag.Var(&formulas, "f", "formula to evaluate (repeatable; multiple formulas with -server go as one batch)")
	flag.Parse()
	if len(formulas) == 0 {
		return fmt.Errorf("missing -f formula")
	}
	reqs := make([]service.Request, len(formulas))
	for i, f := range formulas {
		reqs[i] = service.Request{
			Formula: f,
			N:       *n,
			T:       *t,
			Mode:    *modeName,
			Horizon: *h,
			Limit:   *limit,
		}
	}

	var resps []*service.Response
	if *server != "" {
		client := service.NewClient(*server)
		if *retries >= 0 {
			client.MaxRetries = *retries
		}
		if *budget > 0 {
			client.Budget = *budget
		}
		ctx := context.Background()
		if *traceID != "" {
			if !telemetry.ValidTraceID(*traceID) {
				return fmt.Errorf("bad -trace-id %q (want 1-64 chars of [0-9a-zA-Z._-])", *traceID)
			}
			ctx = telemetry.ContextWithTraceID(ctx, *traceID)
		}
		if len(reqs) == 1 {
			resp, err := client.Query(ctx, reqs[0])
			if err != nil {
				return err
			}
			resps = append(resps, resp)
		} else {
			batch, err := client.QueryBatch(ctx, reqs)
			if err != nil {
				return err
			}
			for i, item := range batch.Results {
				if item.Error != "" {
					return fmt.Errorf("batch item %d (%q): %s (status %d)",
						i, reqs[i].Formula, item.Error, item.Status)
				}
				resps = append(resps, item.Response)
			}
		}
	} else {
		st, oerr := store.Open(*cachedir, 0)
		if oerr != nil {
			return oerr
		}
		eng := service.NewEngine(st, 0)
		eng.SetParallelism(*parallel)
		for _, req := range reqs {
			resp, err := eng.Execute(context.Background(), req)
			if err != nil {
				return err
			}
			resps = append(resps, resp)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if len(resps) == 1 {
			return enc.Encode(resps[0])
		}
		return enc.Encode(resps)
	}

	invalid := 0
	for i, resp := range resps {
		if i > 0 {
			fmt.Println()
		}
		if !printResult(resp) {
			invalid++
		}
	}
	if len(resps) > 1 {
		fmt.Printf("\n%d/%d valid\n", len(resps)-invalid, len(resps))
	}
	return nil
}

// printResult renders one query result and reports its validity.
func printResult(resp *service.Response) bool {
	sys := resp.System
	fmt.Printf("formula:  %s\n", resp.Formula)
	fmt.Printf("system:   %s n=%d t=%d h=%d (%d runs, %d points; %s)\n",
		sys.Mode, sys.N, sys.T, sys.Horizon, sys.Runs, sys.Points, sys.Origin)
	fmt.Printf("true at:  %d / %d points\n", resp.TruePoints, resp.TotalPoints)
	if p := resp.Provenance; p != nil {
		if p.TraceID != "" {
			fmt.Printf("trace:    %s\n", p.TraceID)
		}
		fmt.Printf("latency:  %.3fms (queue %.3f, load %.3f, eval %.3f, scan %.3f); system %s, result %s, %d workers\n",
			resp.ElapsedMS, p.Stages.QueueMS, p.Stages.LoadMS, p.Stages.EvalMS, p.Stages.ScanMS,
			p.SystemOrigin, p.ResultOrigin, p.Parallelism)
		if p.Eval != nil && p.Eval.FixedPointTotal() > 0 {
			fmt.Printf("fixpoint: %d iterations\n", p.Eval.FixedPointTotal())
		}
	}
	if resp.Valid {
		fmt.Println("verdict:  VALID")
		return true
	}
	fmt.Println("verdict:  not valid")
	if ce := resp.Counterexample; ce != nil {
		fmt.Printf("fails at: time %d of run %d (cfg %s, %s; point %d)\n",
			ce.Time, ce.Run, ce.Config, ce.Pattern, ce.Point)
	}
	return false
}
