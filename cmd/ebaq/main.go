// Command ebaq is a model-checking calculator for the paper's logic:
// it enumerates a full-information system and evaluates a formula at
// every point, reporting validity, the count of satisfying points,
// and a sample counterexample.
//
// Formula syntax (see the knowledge package's Parse):
//
//	atoms:   E0 E1 initI=V nfI knowsI=V true false
//	boolean: ! & | -> <->  (parentheses group)
//	modal:   KI BI E C Cbox Cdia box dia alw ev
//
// Examples:
//
//	ebaq -f 'Cbox E0 -> C E0'                      # Sec 3.3: valid
//	ebaq -f 'C E0 -> Cbox E0'                      # ... the converse fails
//	ebaq -n 3 -t 1 -mode omission -f 'K0 E0 -> B0 E0'
//	ebaq -f 'knows1=0 -> K1 E0'                    # syntactic = semantic
package main

import (
	"flag"
	"fmt"
	"os"

	eba "github.com/eventual-agreement/eba"
	"github.com/eventual-agreement/eba/internal/knowledge"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ebaq:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n        = flag.Int("n", 3, "processors")
		t        = flag.Int("t", 1, "fault bound")
		modeName = flag.String("mode", "crash", "crash | omission")
		h        = flag.Int("h", 0, "horizon (default t+2)")
		src      = flag.String("f", "", "formula to evaluate (required)")
		limit    = flag.Int("limit", 2_000_000, "omission pattern limit")
	)
	flag.Parse()
	if *src == "" {
		return fmt.Errorf("missing -f formula")
	}
	if *h == 0 {
		*h = *t + 2
	}
	var mode eba.Mode
	switch *modeName {
	case "crash":
		mode = eba.Crash
	case "omission":
		mode = eba.Omission
	default:
		return fmt.Errorf("unknown mode %q", *modeName)
	}

	f, err := knowledge.Parse(*src)
	if err != nil {
		return err
	}

	sys, err := eba.NewSystem(eba.Params{N: *n, T: *t}, mode, *h, *limit)
	if err != nil {
		return err
	}
	e := eba.NewEvaluator(sys)
	tbl := e.Eval(f)

	fmt.Printf("formula:  %s\n", f)
	fmt.Printf("system:   %s n=%d t=%d h=%d (%d runs, %d points)\n",
		mode, *n, *t, *h, sys.NumRuns(), sys.NumPoints())
	fmt.Printf("true at:  %d / %d points\n", tbl.Count(), tbl.Len())
	if tbl.All() {
		fmt.Println("verdict:  VALID")
		return nil
	}
	fmt.Println("verdict:  not valid")
	for idx := 0; idx < tbl.Len(); idx++ {
		if !tbl.Get(idx) {
			pt := sys.PointAt(idx)
			run := sys.RunOf(pt)
			fmt.Printf("fails at: time %d of run %d (cfg %s, %s)\n",
				pt.Time, run.Index, run.Config, run.Pattern)
			break
		}
	}
	return nil
}
