// Command ebaconform runs the randomized conformance harness: seeded
// scenarios are executed on the live network runtime, replayed on the
// deterministic engine, and checked against the knowledge layer's
// prescriptions; every generated system is additionally subjected to
// the epistemic law catalog and the Thm 5.3 optimality oracle.
//
// Scenarios span all four failure modes (crash, sending omission,
// receiving omission, general omission); -mode restricts the run to a
// comma-separated subset.
//
// Exit status is non-zero when any check fails; failures are appended
// to a JSONL corpus (-corpus) whose records replay by seed (plus the
// run's -mode filter, recorded in the replay hint):
//
//	ebaconform -seed <seed> -count 1 [-mode receiving-omission]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/eventual-agreement/eba/internal/conform"
	"github.com/eventual-agreement/eba/internal/failures"
	"github.com/eventual-agreement/eba/internal/telemetry"
)

func main() {
	var (
		seed     = flag.Int64("seed", 1, "base seed; scenario i uses seed+i")
		count    = flag.Int("count", 100, "number of scenarios")
		budget   = flag.Duration("budget", 0, "wall-clock budget; scenarios beyond it are skipped (0 = none)")
		parallel = flag.Int("parallel", 0, "scenarios in flight (0 = min(4, GOMAXPROCS))")
		deadline = flag.Duration("deadline", 200*time.Millisecond, "live per-round receive deadline")
		corpus   = flag.String("corpus", "conform-corpus.jsonl", "JSONL failure corpus path (empty = don't write)")
		cacheDir = flag.String("cachedir", "", "snapshot store directory (empty = temp dir)")
		mutant   = flag.String("mutant", "", "test-only fault injection: law | oracle | differential | cluster | reconstruction | parity")
		modeList = flag.String("mode", "", "comma-separated failure-mode filter: crash | omission | receiving-omission | general-omission (empty = all)")
		quiet    = flag.Bool("q", false, "suppress progress lines")
	)
	tele := telemetry.BindFlags(flag.CommandLine)
	flag.Parse()
	if err := tele.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "ebaconform:", err)
		os.Exit(2)
	}
	defer tele.Close()

	var modes []failures.Mode
	if *modeList != "" {
		for _, name := range strings.Split(*modeList, ",") {
			m, err := failures.ParseMode(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, "ebaconform:", err)
				os.Exit(2)
			}
			modes = append(modes, m)
		}
	}

	opts := conform.Options{
		Seed:     *seed,
		Count:    *count,
		Modes:    modes,
		Budget:   *budget,
		Parallel: *parallel,
		Deadline: *deadline,
		CacheDir: *cacheDir,
		Corpus:   *corpus,
		Mutant:   *mutant,
	}
	if !*quiet {
		opts.Log = os.Stderr
	}
	res, err := conform.Run(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ebaconform:", err)
		os.Exit(2)
	}
	status := "PASS"
	if len(res.Violations) > 0 {
		status = "FAIL"
	}
	fmt.Printf("%s: %d scenarios (%d skipped), %d system keys, %d checks, %d violations in %v\n",
		status, res.Scenarios, res.Skipped, res.Keys, res.Checks, len(res.Violations), res.Elapsed.Round(time.Millisecond))
	for _, v := range res.Violations {
		fmt.Printf("  %s/%s seed=%d (%s n=%d t=%d h=%d cfg=%s): %s\n      replay: %s\n",
			v.Pillar, v.Law, v.Seed, v.Mode, v.N, v.T, v.Horizon, v.Config, v.Detail, v.Replay)
	}
	if len(res.Violations) > 0 {
		os.Exit(1)
	}
}
