// Command ebacheck exhaustively verifies the paper's protocols over
// an enumerated full-information system: EBA conditions, the Theorem
// 5.3 optimality oracle, and the pairwise dominance matrix — for
// every protocol applicable to the chosen failure mode, including the
// knowledge-derived optimum constructed on the spot by the two-step
// method.
//
// Usage:
//
//	ebacheck -n 3 -t 1 -mode crash -h 3
//	ebacheck -n 3 -t 1 -mode omission -h 3
//	ebacheck -n 3 -t 1 -mode receiving-omission -h 2
//	ebacheck -n 3 -t 1 -mode general-omission -h 2
package main

import (
	"flag"
	"fmt"
	"os"

	eba "github.com/eventual-agreement/eba"
	"github.com/eventual-agreement/eba/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ebacheck:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n        = flag.Int("n", 3, "processors")
		t        = flag.Int("t", 1, "fault bound")
		modeName = flag.String("mode", "crash", "crash | omission | receiving-omission | general-omission")
		h        = flag.Int("h", 0, "horizon (default t+2)")
		limit    = flag.Int("limit", 2_000_000, "omission pattern limit (0 = unlimited)")
		parallel = flag.Int("parallel", 0, "worker bound for enumeration and evaluation (0 = all cores, 1 = sequential)")
		tel      = telemetry.BindFlags(flag.CommandLine)
	)
	flag.Parse()
	if err := tel.Start(); err != nil {
		return err
	}
	defer tel.Close()
	if *h == 0 {
		*h = *t + 2
	}

	mode, err := eba.ParseMode(*modeName)
	if err != nil {
		return err
	}

	params := eba.Params{N: *n, T: *t}
	fmt.Printf("enumerating %s system n=%d t=%d h=%d ...\n", mode, *n, *t, *h)
	eba.SetParallelism(*parallel)
	sys, err := eba.NewSystemParallel(params, mode, *h, *limit, *parallel)
	if err != nil {
		return err
	}
	fmt.Printf("  %d runs, %d points, %d distinct views\n\n", sys.NumRuns(), sys.NumPoints(), sys.Interner.Size())
	e := eba.NewEvaluator(sys)

	type entry struct {
		name string
		pair eba.Pair
	}
	var pairs []entry
	if mode == eba.Crash {
		pairs = append(pairs,
			entry{"P0", eba.P0Pair(*t)},
			entry{"P1", eba.P1Pair(*t)},
			entry{"P0opt", eba.P0OptPair()},
		)
	} else {
		chain := eba.Chain0SemanticPair(e)
		pairs = append(pairs,
			entry{"Chain0", chain},
			entry{"F*", eba.PrimeStep(e, chain, "F*")},
		)
	}
	opt := eba.TwoStep(e, eba.NeverDecide())
	pairs = append(pairs, entry{"TwoStep(FΛ)", opt})

	fmt.Printf("%-14s %-10s %-10s %-10s %-12s %s\n", "protocol", "decision", "agreement", "validity", "optimal", "worst case")
	for _, p := range pairs {
		dec := verdict(eba.CheckDecision(sys, p.pair))
		agr := verdict(eba.CheckWeakAgreement(sys, p.pair))
		val := verdict(eba.CheckWeakValidity(sys, p.pair))
		optOK, _ := eba.IsOptimal(e, p.pair)
		max, all := eba.MaxNonfaultyDecisionRound(sys, p.pair)
		worst := fmt.Sprintf("%d", max)
		if !all {
			worst = "undecided"
		}
		fmt.Printf("%-14s %-10s %-10s %-10s %-12v %s\n", p.name, dec, agr, val, optOK, worst)
	}

	fmt.Println("\ndominance matrix (row dominates column):")
	fmt.Printf("%-14s", "")
	for _, q := range pairs {
		fmt.Printf("%-14s", q.name)
	}
	fmt.Println()
	for _, p := range pairs {
		fmt.Printf("%-14s", p.name)
		for _, q := range pairs {
			cell := "-"
			if p.name != q.name {
				switch {
				case eba.StrictlyDominates(sys, p.pair, q.pair):
					cell = "strict"
				case eba.Dominates(sys, p.pair, q.pair):
					cell = "yes"
				default:
					cell = "no"
				}
			}
			fmt.Printf("%-14s", cell)
		}
		fmt.Println()
	}
	return nil
}

func verdict(err error) string {
	if err != nil {
		return "FAIL"
	}
	return "ok"
}
