// Command ebad is the epistemic query daemon: an HTTP service that
// answers formula queries over enumerated full-information systems,
// backed by a persistent snapshot store so a system is enumerated
// once and then served from memory or disk.
//
// Endpoints:
//
//	POST /v1/query          {"formula":"Cbox E0 -> C E0","n":3,"t":1,"mode":"crash"}
//	GET  /v1/systems        cache inventory and hit/miss statistics
//	GET  /healthz           liveness
//	GET  /metrics           Prometheus text exposition
//	GET  /debug/queries     in-flight and recent queries with stage timings
//	GET  /debug/trace/{id}  one trace's retained span/event stream
//
// Serve mode:
//
//	ebad -addr :8080 -cachedir ~/.cache/eba
//
// Load-generator mode (against a running daemon):
//
//	ebad -load http://localhost:8080 -queries 200 -workers 8 \
//	     -f 'Cbox E0 -> C E0' -f 'C E0 -> Cbox E0'
//
// Overload-experiment mode (ramp offered QPS past the daemon's
// admission capacity and measure shedding, goodput, and recovery):
//
//	ebad -overload http://localhost:8080 -start-qps 50 -peak-qps 2000 \
//	     -steps 8 -step-dur 2s -bench-out BENCH_overload.json
//
// Cluster mode (three such invocations make a fleet; every node routes
// queries to the consistent-hash owner of their system key and
// replicates snapshots from peers by content address):
//
//	ebad -addr :8081 -cachedir /tmp/n1 -cluster \
//	     -self n1 -peers 'n1=http://localhost:8081,n2=http://localhost:8082,n3=http://localhost:8083'
//
// Cluster load mode (batch queries spread across the fleet, grouped by
// key ownership; writes the aggregate-throughput report):
//
//	ebad -cluster-load -target http://localhost:8081 -target http://localhost:8082 \
//	     -target http://localhost:8083 -batch 256 -duration 10s -bench-out BENCH_cluster.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"github.com/eventual-agreement/eba/internal/cluster"
	"github.com/eventual-agreement/eba/internal/service"
	"github.com/eventual-agreement/eba/internal/store"
	"github.com/eventual-agreement/eba/internal/telemetry"
)

// formulaList collects repeated -f flags.
type formulaList []string

func (l *formulaList) String() string     { return fmt.Sprint(*l) }
func (l *formulaList) Set(s string) error { *l = append(*l, s); return nil }

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ebad:", err)
		os.Exit(1)
	}
}

func run() error {
	var formulas formulaList
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		cachedir = flag.String("cachedir", "", "snapshot store directory (empty = in-memory only)")
		maxMem   = flag.Int("maxmem", store.DefaultMaxMem, "max systems held in memory")
		timeout  = flag.Duration("timeout", 5*time.Minute, "per-query timeout (0 = none)")
		grace    = flag.Duration("grace", 10*time.Second, "shutdown grace for in-flight queries")
		parallel = flag.Int("parallel", 0, "worker bound for cold enumeration and evaluation (0 = all cores, 1 = sequential)")

		traceRing     = flag.Int("trace-ring", 4096, "in-memory trace retention ring capacity for /debug/trace (0 = off)")
		slowLog       = flag.String("slowlog", "", "append slow queries as JSONL to this file (\"\" = off)")
		slowThreshold = flag.Duration("slow-threshold", 250*time.Millisecond, "latency above which a query lands in the slow log")
		incidentDir   = flag.String("incident-dir", "", "directory for trace-ring incident dumps on shed/drain/quarantine (default cachedir/incidents when -cachedir is set)")

		maxInflight  = flag.Int("max-inflight", 64, "admission: max concurrently executing queries (0 = unbounded)")
		perKey       = flag.Int("per-key", 4, "admission: max concurrent expensive queries per system key (0 = unbounded)")
		maxQueue     = flag.Int("max-queue", 256, "admission: max queries waiting for a slot (0 = 4x max-inflight)")
		queueTimeout = flag.Duration("queue-timeout", time.Second, "admission: max wait for a slot before shedding 429")
		retryAfter   = flag.Duration("retry-after", time.Second, "admission: Retry-After hint on shed responses")

		load    = flag.String("load", "", "load-generator mode: base URL of a running daemon")
		queries = flag.Int("queries", 100, "load mode: total queries to issue")
		workers = flag.Int("workers", 8, "load mode: concurrent clients")
		n       = flag.Int("n", 3, "load mode: processors")
		t       = flag.Int("t", 1, "load mode: fault bound")
		mode    = flag.String("mode", "crash", "load mode: crash | omission | receiving-omission | general-omission")
		horizon = flag.Int("h", 0, "load mode: horizon (default t+2)")
		limit   = flag.Int("limit", 0, "load mode: omission pattern limit (0 = default)")

		clustered     = flag.Bool("cluster", false, "serve as a cluster node (requires -self and -peers)")
		self          = flag.String("self", "", "cluster: this node's name (must appear in -peers)")
		peersFlag     = flag.String("peers", "", "cluster: full fleet as name=url,name=url,...")
		vnodes        = flag.Int("vnodes", 0, "cluster: virtual nodes per member on the hash ring (0 = default)")
		probeInterval = flag.Duration("probe-interval", 0, "cluster: /healthz probe cadence (0 = 2s)")

		clusterLoad = flag.Bool("cluster-load", false, "cluster load mode: batch queries against -target fleet")
		batch       = flag.Int("batch", 0, "cluster load mode: items per batch (0 = 256)")
		duration    = flag.Duration("duration", 0, "cluster load mode: measurement window (0 = 10s)")
		spread      = flag.Int("spread", 0, "cluster load mode: clone each formula over this many distinct omission keys so ownership scatters load across the fleet (0 = base key only)")

		overload = flag.String("overload", "", "overload-experiment mode: base URL of a running daemon")
		startQPS = flag.Float64("start-qps", 50, "overload mode: offered QPS of the first ramp step")
		peakQPS  = flag.Float64("peak-qps", 2000, "overload mode: offered QPS of the last ramp step")
		steps    = flag.Int("steps", 8, "overload mode: ramp steps")
		stepDur  = flag.Duration("step-dur", 2*time.Second, "overload mode: duration of each step")
		cold     = flag.Bool("cold", true, "overload mode: make every request a distinct cold system key (cached lookups are too cheap to saturate anything)")
		benchOut = flag.String("bench-out", "", "overload / cluster-load mode: also write the report to this file")
	)
	var targets formulaList
	flag.Var(&formulas, "f", "load mode: formula to query (repeatable)")
	flag.Var(&targets, "target", "cluster load mode: fleet base URL (repeatable)")
	tel := telemetry.BindFlags(flag.CommandLine)
	flag.Parse()
	if err := tel.Start(); err != nil {
		return err
	}
	defer tel.Close()

	base := service.Request{N: *n, T: *t, Mode: *mode, Horizon: *horizon, Limit: *limit}
	if *clusterLoad {
		return runClusterLoad(targets, formulas, base, cluster.LoadOptions{
			Workers: *workers, BatchSize: *batch, Duration: *duration,
		}, *spread, *benchOut)
	}
	if *load != "" {
		return runLoad(*load, formulas, *workers, *queries, base)
	}
	if *overload != "" {
		return runOverload(*overload, formulas, base, service.OverloadConfig{
			StartQPS: *startQPS, PeakQPS: *peakQPS, Steps: *steps, StepDur: *stepDur,
			ColdKeys: *cold,
		}, *benchOut)
	}

	// The retention ring backs /debug/trace/{id} and incident dumps
	// even when no -tracefile is set; install it before serving.
	telemetry.SetRing(*traceRing)

	st, err := store.Open(*cachedir, *maxMem)
	if err != nil {
		return err
	}
	eng := service.NewEngine(st, *timeout)
	eng.SetParallelism(*parallel)
	srv := service.NewServer(eng)
	srv.SetAdmission(service.AdmissionConfig{
		MaxInflight:  *maxInflight,
		PerKey:       *perKey,
		MaxQueue:     *maxQueue,
		QueueTimeout: *queueTimeout,
		RetryAfter:   *retryAfter,
	})
	incDir := *incidentDir
	if incDir == "" && *cachedir != "" {
		incDir = filepath.Join(*cachedir, "incidents")
	}
	if err := srv.SetObservability(service.ObservabilityConfig{
		SlowLogPath:   *slowLog,
		SlowThreshold: *slowThreshold,
		IncidentDir:   incDir,
	}); err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *clustered {
		peers, err := cluster.ParsePeers(*peersFlag)
		if err != nil {
			return err
		}
		cl, err := cluster.New(cluster.Config{
			Self: *self, Peers: peers, VNodes: *vnodes, ProbeInterval: *probeInterval,
		})
		if err != nil {
			return err
		}
		cl.Attach(eng, srv, st)
		cl.Start(ctx)
		fmt.Fprintf(os.Stderr, "ebad: cluster node %s, %d peers\n", *self, len(peers))
	}

	where := *cachedir
	if where == "" {
		where = "(memory only)"
	}
	fmt.Fprintf(os.Stderr, "ebad: listening on %s, cache %s\n", *addr, where)
	return srv.ListenAndServe(ctx, *addr, *grace)
}

// runClusterLoad drives a fleet with locality-aware batches and prints
// (and optionally writes) the aggregate-throughput report.
func runClusterLoad(targets, formulas []string, base service.Request, opts cluster.LoadOptions, spread int, outPath string) error {
	if len(targets) == 0 {
		return fmt.Errorf("cluster load mode needs at least one -target")
	}
	if len(formulas) == 0 {
		formulas = []string{"Cbox E0 -> C E0", "C E0 -> Cbox E0"}
	}
	var reqs []service.Request
	for _, f := range formulas {
		r := base
		r.Formula = f
		if spread <= 1 {
			reqs = append(reqs, r)
			continue
		}
		// Distinct omission limits give each clone its own system key,
		// so ownership scatters the offered load across the fleet.
		r.Mode = "omission"
		if r.Limit == 0 {
			r.Limit = 400
		}
		for i := 0; i < spread; i++ {
			ri := r
			ri.Limit += i
			reqs = append(reqs, ri)
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rep, err := cluster.RunLoad(ctx, targets, reqs, opts)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath != "" {
		if err := os.WriteFile(outPath, data, 0o644); err != nil {
			return err
		}
	}
	_, err = os.Stdout.Write(data)
	return err
}

// runLoad drives a remote daemon and prints a JSON throughput report.
func runLoad(baseURL string, formulas []string, workers, total int, base service.Request) error {
	if len(formulas) == 0 {
		formulas = []string{"Cbox E0 -> C E0", "C E0 -> Cbox E0"}
	}
	reqs := make([]service.Request, len(formulas))
	for i, f := range formulas {
		reqs[i] = base
		reqs[i].Formula = f
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rep, err := service.RunLoad(ctx, baseURL, reqs, workers, total)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// runOverload ramps offered load past the daemon's capacity and prints
// (and optionally writes) the shedding/goodput/recovery report.
func runOverload(baseURL string, formulas []string, base service.Request, cfg service.OverloadConfig, outPath string) error {
	if len(formulas) == 0 {
		formulas = []string{"Cbox E0 -> C E0", "C E0 -> Cbox E0"}
	}
	reqs := make([]service.Request, len(formulas))
	for i, f := range formulas {
		reqs[i] = base
		reqs[i].Formula = f
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rep, err := service.RunOverload(ctx, baseURL, reqs, cfg)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath != "" {
		if err := os.WriteFile(outPath, data, 0o644); err != nil {
			return err
		}
	}
	_, err = os.Stdout.Write(data)
	return err
}
