// Command ebaexp reproduces the paper's results: it runs the
// experiment suite (E1-E13 plus ablations A1-A3, see DESIGN.md) and
// prints one table per experiment with a PASS/FAIL verdict.
//
// Usage:
//
//	ebaexp            # run everything
//	ebaexp -e E6,E9   # run selected experiments
//	ebaexp -list      # list experiments
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/eventual-agreement/eba/internal/exp"
	"github.com/eventual-agreement/eba/internal/telemetry"
)

func main() {
	var (
		ids      = flag.String("e", "", "comma-separated experiment IDs (default: all)")
		list     = flag.Bool("list", false, "list experiments and exit")
		jsonOut  = flag.Bool("json", false, "emit results as JSON instead of tables")
		parallel = flag.Int("parallel", 0, "worker bound for system builds and evaluation (0 = all cores, 1 = sequential)")
		tel      = telemetry.BindFlags(flag.CommandLine)
	)
	flag.Parse()
	if err := tel.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "ebaexp:", err)
		os.Exit(1)
	}
	defer tel.Close()
	exp.SetParallelism(*parallel)

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []exp.Experiment
	if *ids == "" {
		selected = exp.All()
	} else {
		for _, id := range strings.Split(*ids, ",") {
			e, ok := exp.Find(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "ebaexp: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	failed := 0
	var results []*exp.Result
	for _, e := range selected {
		res, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ebaexp: %s: %v\n", e.ID, err)
			failed++
			continue
		}
		if *jsonOut {
			results = append(results, res)
		} else {
			exp.Render(os.Stdout, res)
		}
		if !res.Pass {
			failed++
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintln(os.Stderr, "ebaexp:", err)
			os.Exit(1)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "ebaexp: %d experiment(s) failed\n", failed)
		tel.Close() // os.Exit skips defers; still emit the snapshot
		os.Exit(1)
	}
}
