package eba_test

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	eba "github.com/eventual-agreement/eba"
	"github.com/eventual-agreement/eba/internal/service"
)

// storeBenchKey is the acceptance workload: the full n=4 t=2 omission
// adversary at horizon 2 (24,833 patterns, ~400k runs, ~1.2M points —
// the largest system the repo enumerates exhaustively).
func storeBenchKey() eba.StoreKey {
	return eba.StoreKey{N: 4, T: 2, Mode: eba.Omission, Horizon: 2}
}

// BenchmarkStoreColdEnumerate measures building the bench system from
// scratch (no disk layer).
func BenchmarkStoreColdEnumerate(b *testing.B) {
	key := storeBenchKey()
	for i := 0; i < b.N; i++ {
		st, err := eba.OpenStore("", 1)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := st.System(key); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreWarmLoad measures restoring the same system from its
// snapshot.
func BenchmarkStoreWarmLoad(b *testing.B) {
	dir := b.TempDir()
	key := storeBenchKey()
	st, err := eba.OpenStore(dir, 1)
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := st.System(key); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		warm, err := eba.OpenStore(dir, 1)
		if err != nil {
			b.Fatal(err)
		}
		if _, origin, err := warm.System(key); err != nil || origin != 1 /* disk */ {
			b.Fatalf("origin %v err %v", origin, err)
		}
	}
}

// TestStoreWarmSpeedup is the PR's acceptance measurement: a
// warm-store load of the n=4 t=2 omission system must beat cold
// enumeration by a wide margin. The DESIGN.md target is 5×; the hard
// floor here is 2.5× so tier-1 stays robust on noisy shared runners,
// with the measured ratio always reported (and written to
// BENCH_STORE_OUT for the BENCH_store.json artifact, together with a
// service throughput measurement).
func TestStoreWarmSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test; skipped in -short")
	}
	dir := t.TempDir()
	key := storeBenchKey()

	cold, err := eba.OpenStore(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	sys, origin, err := cold.System(key)
	coldT := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if origin.String() != "enumerated" {
		t.Fatalf("cold origin %v", origin)
	}

	const reps = 3
	warmT := time.Duration(1<<63 - 1)
	for i := 0; i < reps; i++ {
		warm, err := eba.OpenStore(dir, 2)
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		wsys, origin, err := warm.System(key)
		d := time.Since(start)
		if err != nil {
			t.Fatal(err)
		}
		if origin.String() != "disk" {
			t.Fatalf("warm origin %v", origin)
		}
		if wsys.NumPoints() != sys.NumPoints() {
			t.Fatalf("warm system has %d points, want %d", wsys.NumPoints(), sys.NumPoints())
		}
		if d < warmT {
			warmT = d
		}
	}
	ratio := float64(coldT) / float64(warmT)
	t.Logf("%s: cold enumerate %v, warm load %v (min of %d), speedup %.1f× (target 5×)",
		key, coldT, warmT, reps, ratio)

	qps := measureServiceQPS(t)

	if out := os.Getenv("BENCH_STORE_OUT"); out != "" {
		blob, err := json.MarshalIndent(map[string]any{
			"workload":          key.String(),
			"runs":              sys.NumRuns(),
			"points":            sys.NumPoints(),
			"cold_enumerate_ns": coldT.Nanoseconds(),
			"warm_load_ns":      warmT.Nanoseconds(),
			"warm_speedup":      ratio,
			"target_speedup":    5.0,
			"warm_reps":         reps,
			"timing":            "warm = min over reps",
			"service":           qps,
		}, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		blob = append(blob, '\n')
		if err := os.WriteFile(out, blob, 0o644); err != nil {
			t.Fatalf("write %s: %v", out, err)
		}
	}

	if ratio < 2.5 {
		t.Errorf("warm-store speedup %.1f× below the 2.5× floor (target 5×)", ratio)
	}
}

// measureServiceQPS runs the load generator against an in-process
// daemon over the small default system, reporting cached-query
// throughput.
func measureServiceQPS(t *testing.T) *service.LoadReport {
	st, err := eba.OpenStore(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(eba.NewQueryServer(eba.NewQueryEngine(st, 0)).Handler())
	defer ts.Close()
	reqs := []service.Request{
		{Formula: "Cbox E0 -> C E0"},
		{Formula: "C E0 -> Cbox E0"},
		{Formula: "K0 E0 -> B0 E0"},
	}
	rep, err := service.RunLoad(context.Background(), ts.URL, reqs, 8, 400)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("load run had %d errors (first: %s)", rep.Errors, rep.FirstErr)
	}
	t.Logf("service: %d queries, %.0f qps, p50 %.2fms p95 %.2fms", rep.Queries, rep.QPS, rep.P50MS, rep.P95MS)
	return rep
}
