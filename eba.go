// Package eba is a reproduction of Halpern, Moses, and Waarts,
// "A Characterization of Eventual Byzantine Agreement" (PODC 1990):
// a library for building, running, model-checking, and optimizing
// eventual-Byzantine-agreement protocols in the crash,
// sending-omission, receiving-omission, and general-omission failure
// modes (the latter two following arXiv:2305.06271).
//
// The package is a facade over the internal packages:
//
//   - failure patterns and adversaries (crash / sending omission /
//     receiving omission / general omission), with exhaustive
//     enumerators and seeded samplers;
//   - two execution engines for the same Protocol interface: a
//     deterministic synchronous round engine and a live goroutine/
//     channel runtime with fault injection;
//   - full-information systems: every run of the full-information
//     protocol for given (n, t, horizon, mode), hash-consed;
//   - a knowledge model checker for the paper's epistemic logic —
//     K_i, B^S_i, E_S, C_S, □̂, E□_S, and continual common knowledge
//     C□_S (computed by its S-□-reachability characterization);
//   - decision pairs (𝒵, 𝒪) and the runnable protocols FIP(𝒵, 𝒪);
//   - the paper's construction: the prime/double-prime improvement
//     steps, the two-step optimization (Theorem 5.2), and the
//     optimality oracle (Theorem 5.3);
//   - the paper's protocols: P0/P1, P0opt, the 0-chain omission-mode
//     EBA protocol, and the knowledge-derived optima;
//   - simultaneous Byzantine agreement (SBA) via common knowledge,
//     for the EBA-vs-SBA comparisons that motivate the paper.
//
// # Quick start
//
//	params := eba.Params{N: 4, T: 1}
//	sys, _ := eba.NewSystem(params, eba.Crash, 3, 0)
//	e := eba.NewEvaluator(sys)
//
//	// Optimize the never-deciding protocol into the crash-mode
//	// optimum (Theorem 6.1), and verify it.
//	opt := eba.TwoStep(e, eba.NeverDecide())
//	if err := eba.CheckEBA(sys, opt); err != nil { ... }
//	if ok, _ := eba.IsOptimal(e, opt); !ok { ... }
//
//	// Run the concrete equivalent live, on goroutines.
//	pat := eba.Silent(eba.Crash, 4, 3, 0, 2)
//	tr, _ := eba.RunLive(eba.P0Opt(), params, eba.ConfigFromBits(4, 0b1110), pat)
package eba

import (
	"context"
	"math/rand"
	"time"

	"github.com/eventual-agreement/eba/internal/byzantine"
	"github.com/eventual-agreement/eba/internal/chaos"
	"github.com/eventual-agreement/eba/internal/cluster"
	"github.com/eventual-agreement/eba/internal/conform"
	"github.com/eventual-agreement/eba/internal/core"
	"github.com/eventual-agreement/eba/internal/failures"
	"github.com/eventual-agreement/eba/internal/faultinject"
	"github.com/eventual-agreement/eba/internal/fip"
	"github.com/eventual-agreement/eba/internal/knowledge"
	"github.com/eventual-agreement/eba/internal/nettransport"
	"github.com/eventual-agreement/eba/internal/protocols"
	"github.com/eventual-agreement/eba/internal/sba"
	"github.com/eventual-agreement/eba/internal/service"
	"github.com/eventual-agreement/eba/internal/sim"
	"github.com/eventual-agreement/eba/internal/store"
	"github.com/eventual-agreement/eba/internal/system"
	"github.com/eventual-agreement/eba/internal/transport"
	"github.com/eventual-agreement/eba/internal/types"
	"github.com/eventual-agreement/eba/internal/views"
	"github.com/eventual-agreement/eba/internal/witness"
)

// Core vocabulary, re-exported.
type (
	// Value is an agreement value: Zero, One, or Unset.
	Value = types.Value
	// ProcID identifies a processor (0-based).
	ProcID = types.ProcID
	// Round is a round/time index.
	Round = types.Round
	// Config is an initial configuration (one value per processor).
	Config = types.Config
	// Params is (n, t): system size and fault bound.
	Params = types.Params
	// Decision is one decision event.
	Decision = types.Decision
	// ProcSet is a set of processors.
	ProcSet = types.ProcSet

	// Mode is a failure mode: Crash, Omission, ReceivingOmission, or
	// GeneralOmission.
	Mode = failures.Mode
	// Pattern is a failure pattern: who fails, and how.
	Pattern = failures.Pattern
	// Behavior is one faulty processor's omission schedule.
	Behavior = failures.Behavior

	// Protocol is a runnable protocol (factory of per-processor
	// processes).
	Protocol = sim.Protocol
	// Process is one running protocol instance.
	Process = sim.Process
	// Env is the environment a process is created in.
	Env = sim.Env
	// Message is an opaque protocol message.
	Message = sim.Message
	// Trace records the decisions of one run.
	Trace = sim.Trace

	// System is an enumerated full-information system.
	System = system.System
	// Point is a point (run, time) of a system.
	Point = system.Point
	// SysRun is one run of a system.
	SysRun = system.Run

	// Interner hash-conses full-information views.
	Interner = views.Interner
	// ViewID is an interned view.
	ViewID = views.ID

	// Formula is an epistemic formula.
	Formula = knowledge.Formula
	// NonrigidSet is a point-varying processor set.
	NonrigidSet = knowledge.NonrigidSet
	// Evaluator model-checks formulas over a system.
	Evaluator = knowledge.Evaluator
	// Bits is a truth table over a system's points.
	Bits = knowledge.Bits

	// DecisionSet is a set of local states (the paper's 𝒵 or 𝒪).
	DecisionSet = fip.DecisionSet
	// Pair is a decision pair (𝒵, 𝒪).
	Pair = fip.Pair

	// Prop63Report is the result of the Proposition 6.3 certificate
	// search.
	Prop63Report = witness.Report
)

// Values and modes.
const (
	Zero  = types.Zero
	One   = types.One
	Unset = types.Unset

	Crash             = failures.Crash
	Omission          = failures.Omission
	ReceivingOmission = failures.ReceivingOmission
	GeneralOmission   = failures.GeneralOmission

	// NoView marks an absent message in a view.
	NoView = views.NoView
)

// ParseMode maps a mode name ("crash", "omission",
// "receiving-omission", "general-omission", or a short alias) to its
// Mode; unknown names error with failures.ErrUnknownMode.
func ParseMode(s string) (Mode, error) { return failures.ParseMode(s) }

// ConfigFromBits builds the n-processor configuration whose processor
// i has initial value bit i of mask.
func ConfigFromBits(n int, mask uint64) Config { return types.ConfigFromBits(n, mask) }

// NewConfig builds and validates a configuration.
func NewConfig(vals ...Value) (Config, error) { return types.NewConfig(vals...) }

// Failure patterns.

// FailureFree returns the pattern with no failures.
func FailureFree(mode Mode, n, h int) *Pattern { return failures.FailureFree(mode, n, h) }

// Silent makes processor p faulty and silent from round k on (modes
// with sending faults).
func Silent(mode Mode, n, h int, p ProcID, k int) *Pattern {
	return failures.Silent(mode, n, h, p, k)
}

// Deaf makes processor p faulty and deaf from round k on: it receives
// nothing from round k onward (modes with receiving faults).
func Deaf(mode Mode, n, h int, p ProcID, k int) *Pattern {
	return failures.Deaf(mode, n, h, p, k)
}

// SilentExcept makes p faulty and silent except for one delivery to
// dst in round m (omission mode; the Proposition 6.3 construction).
func SilentExcept(n, h int, p ProcID, m int, dst ProcID) *Pattern {
	return failures.SilentExcept(n, h, p, m, dst)
}

// NewPattern builds and validates an arbitrary pattern.
func NewPattern(mode Mode, n, h int, faulty ProcSet, behavior map[ProcID]*Behavior) (*Pattern, error) {
	return failures.NewPattern(mode, n, h, faulty, behavior)
}

// EnumCrash enumerates all canonical crash patterns.
func EnumCrash(n, t, h int) ([]*Pattern, error) { return failures.EnumCrash(n, t, h) }

// EnumOmission enumerates all omission patterns (limit > 0 bounds the
// count; 0 means unlimited).
func EnumOmission(n, t, h, limit int) ([]*Pattern, error) {
	return failures.EnumOmission(n, t, h, limit)
}

// SampleCrash draws random crash patterns (the failure-free pattern
// first, then distinct samples).
func SampleCrash(n, t, h, count int, rng *rand.Rand) ([]*Pattern, error) {
	return failures.SampleCrash(n, t, h, count, rng)
}

// SampleOmission draws random omission patterns.
func SampleOmission(n, t, h, count int, rng *rand.Rand) ([]*Pattern, error) {
	return failures.SampleOmission(n, t, h, count, rng)
}

// EnumReceiving enumerates all receiving-omission patterns (limit > 0
// bounds the count; 0 means unlimited).
func EnumReceiving(n, t, h, limit int) ([]*Pattern, error) {
	return failures.EnumReceiving(n, t, h, limit)
}

// EnumGeneral enumerates all canonical general-omission patterns
// (limit > 0 bounds the count; 0 means unlimited).
func EnumGeneral(n, t, h, limit int) ([]*Pattern, error) {
	return failures.EnumGeneral(n, t, h, limit)
}

// SampleReceiving draws random receiving-omission patterns.
func SampleReceiving(n, t, h, count int, rng *rand.Rand) ([]*Pattern, error) {
	return failures.SampleReceiving(n, t, h, count, rng)
}

// SampleGeneral draws random canonical general-omission patterns.
func SampleGeneral(n, t, h, count int, rng *rand.Rand) ([]*Pattern, error) {
	return failures.SampleGeneral(n, t, h, count, rng)
}

// Engines.

// Run executes a protocol deterministically on one run.
func Run(p Protocol, params Params, cfg Config, pat *Pattern) (*Trace, error) {
	return sim.Run(p, params, cfg, pat)
}

// RunAll executes a protocol on every configuration × pattern.
func RunAll(p Protocol, params Params, pats []*Pattern) ([]*Trace, error) {
	return sim.RunAll(p, params, pats)
}

// RunAllParallel is RunAll over a worker pool (deterministic output
// order; the protocol must be safe for concurrent process creation —
// all concrete protocols here are; the shared-interner FIP adapter is
// not).
func RunAllParallel(p Protocol, params Params, pats []*Pattern, workers int) ([]*Trace, error) {
	return sim.RunAllParallel(p, params, pats, workers)
}

// RunLive executes a protocol on the goroutine/channel runtime: one
// goroutine per processor, per-link channels, a network goroutine
// injecting the failure pattern.
func RunLive(p Protocol, params Params, cfg Config, pat *Pattern) (*Trace, error) {
	return transport.Run(p, params, cfg, pat)
}

// RunTCP executes a protocol over a real TCP loopback mesh with
// framed, serialized messages (protocol messages must be []byte;
// FIPWire qualifies). Fault injection happens sender-side.
func RunTCP(p Protocol, params Params, cfg Config, pat *Pattern) (*Trace, error) {
	return nettransport.Run(p, params, cfg, pat)
}

// The resilient runtime: deadline-driven rounds over TCP, seeded
// chaos injection, and fault-pattern reconstruction.

type (
	// ResilientOptions configures RunResilient (mode, horizon, round
	// deadline, chaos plan, reconnect backoff).
	ResilientOptions = nettransport.Options
	// ReconstructionError reports a run whose observed behaviour has
	// no legal failure pattern of its mode within the fault bound.
	ReconstructionError = nettransport.ReconstructionError

	// ChaosPlan is a seeded, deterministic schedule of network faults
	// that realizes a legal failure pattern on the wire.
	ChaosPlan = chaos.Plan
	// ChaosMechanism is a wire-level fault mechanism.
	ChaosMechanism = chaos.Mechanism
	// ChaosAction is the planned treatment of one frame.
	ChaosAction = chaos.Action

	// Observation accumulates the message fates of a live run, for
	// fault-pattern reconstruction.
	Observation = failures.Observation
)

// Chaos mechanisms.
const (
	ChaosDrop      = chaos.Drop
	ChaosDelay     = chaos.Delay
	ChaosTruncate  = chaos.Truncate
	ChaosKill      = chaos.Kill
	ChaosPartition = chaos.Partition
)

// NewChaosPlan builds a seeded chaos plan for an (n, t) system over h
// rounds; allowed restricts the mechanisms (empty means all legal for
// the mode — crash mode permits only drop and kill).
func NewChaosPlan(mode Mode, params Params, h int, seed int64, allowed ...ChaosMechanism) (*ChaosPlan, error) {
	return chaos.New(mode, params, h, seed, allowed...)
}

// ParseChaosMechanism parses a mechanism name (drop, delay, truncate,
// kill, partition).
func ParseChaosMechanism(s string) (ChaosMechanism, error) { return chaos.ParseMechanism(s) }

// NewObservation creates an empty observation for an n-processor run
// over h rounds.
func NewObservation(n, h int) *Observation { return failures.NewObservation(n, h) }

// RunResilient executes a protocol over a TCP mesh with
// deadline-driven round synchronization: a frame that misses its round
// deadline is an omission by its sender, dead connections are redialed
// with exponential backoff (omission mode), and the run's effective
// failure pattern is reconstructed from observed message fates and
// attached to the returned trace. Protocol messages must be []byte
// (FIPWire qualifies).
func RunResilient(p Protocol, params Params, cfg Config, opts ResilientOptions) (*Trace, error) {
	return nettransport.RunResilient(p, params, cfg, opts)
}

// VerifyResilient replays a resilient run's reconstructed pattern on
// the deterministic engine and reports the first divergence; nil means
// the live run is trace-equivalent to its paper-semantics replay.
func VerifyResilient(p Protocol, params Params, live *Trace) error {
	return nettransport.VerifyReconstruction(p, params, live)
}

// DiffDecisions compares two traces' decisions (value and time per
// processor) and describes the first divergence; "" means equal.
func DiffDecisions(a, b *Trace) string { return sim.DiffDecisions(a, b) }

// DiffTraces is DiffDecisions plus the sent/delivered message
// counters — the strong equivalence used by VerifyResilient.
func DiffTraces(a, b *Trace) string { return sim.DiffTraces(a, b) }

// Observer receives run events from the deterministic engine.
type Observer = sim.Observer

// TextObserver renders run events as indented text.
type TextObserver = sim.TextObserver

// MetricsObserver feeds run events into the process's telemetry
// registry (rounds, message fates, decisions by round). Stateless: one
// instance may observe any number of runs, concurrently or not.
type MetricsObserver = sim.MetricsObserver

// NewMetricsObserver returns a metrics observer ready to attach to
// RunObserved.
func NewMetricsObserver() *MetricsObserver { return &sim.MetricsObserver{} }

// TeeObservers fans run events out to several observers in order (nil
// entries are skipped).
func TeeObservers(obs ...Observer) Observer { return sim.Tee(obs...) }

// RunObserved executes a protocol deterministically with an Observer
// attached (round boundaries, message fates, decisions).
func RunObserved(p Protocol, params Params, cfg Config, pat *Pattern, obs Observer) (*Trace, error) {
	return sim.RunObserved(p, params, cfg, pat, obs)
}

// Systems and knowledge.

// NewSystem enumerates the full-information system for the mode
// (exhaustive adversary). For Omission, limit > 0 bounds the pattern
// count.
func NewSystem(params Params, mode Mode, horizon, limit int) (*System, error) {
	return system.Enumerate(params, mode, horizon, limit)
}

// NewSystemParallel is NewSystem with run generation sharded across a
// worker pool (workers <= 0 selects all cores). The result — run
// order, view IDs, snapshot digest — is identical to NewSystem's.
func NewSystemParallel(params Params, mode Mode, horizon, limit, workers int) (*System, error) {
	return system.EnumerateParallel(params, mode, horizon, limit, workers)
}

// NewSystemFromPatterns enumerates the system over an explicit
// adversary class.
func NewSystemFromPatterns(params Params, mode Mode, horizon int, pats []*Pattern) (*System, error) {
	return system.FromPatterns(params, mode, horizon, pats)
}

// NewSystemFromPatternsParallel is NewSystemFromPatterns over a worker
// pool, with the same structural-identity guarantee as
// NewSystemParallel.
func NewSystemFromPatternsParallel(params Params, mode Mode, horizon int, pats []*Pattern, workers int) (*System, error) {
	return system.FromPatternsParallel(params, mode, horizon, pats, workers)
}

// NewEvaluator creates a model checker for the system.
func NewEvaluator(sys *System) *Evaluator { return knowledge.NewEvaluator(sys) }

// SetParallelism sets the process-wide default worker bound inherited
// by evaluators created after the call (w <= 0 restores all-cores,
// w == 1 forces sequential evaluation). Truth tables are bit-identical
// at every setting.
func SetParallelism(w int) { knowledge.SetDefaultParallelism(w) }

// Formula constructors (see the knowledge package for semantics).

// Exists0 is the basic fact ∃0.
func Exists0() Formula { return knowledge.Exists0() }

// Exists1 is the basic fact ∃1.
func Exists1() Formula { return knowledge.Exists1() }

// Not is negation.
func Not(f Formula) Formula { return knowledge.Not(f) }

// And is conjunction.
func And(fs ...Formula) Formula { return knowledge.And(fs...) }

// Or is disjunction.
func Or(fs ...Formula) Formula { return knowledge.Or(fs...) }

// Implies is material implication.
func Implies(a, b Formula) Formula { return knowledge.Implies(a, b) }

// Iff is material equivalence.
func Iff(a, b Formula) Formula { return knowledge.Iff(a, b) }

// K is knowledge: K_i φ.
func K(i ProcID, f Formula) Formula { return knowledge.K(i, f) }

// B is belief relative to a nonrigid set: B^S_i φ = K_i(i ∈ S ⇒ φ).
func B(i ProcID, s NonrigidSet, f Formula) Formula { return knowledge.B(i, s, f) }

// E is "everyone in S believes".
func E(s NonrigidSet, f Formula) Formula { return knowledge.E(s, f) }

// C is common knowledge among the nonrigid set S.
func C(s NonrigidSet, f Formula) Formula { return knowledge.C(s, f) }

// Box is the all-times modality □̂.
func Box(f Formula) Formula { return knowledge.Box(f) }

// Diamond is the some-time modality ◇̂.
func Diamond(f Formula) Formula { return knowledge.Diamond(f) }

// EBox is E□_S φ = □̂ E_S φ.
func EBox(s NonrigidSet, f Formula) Formula { return knowledge.EBox(s, f) }

// CBox is continual common knowledge C□_S φ, the paper's new
// operator.
func CBox(s NonrigidSet, f Formula) Formula { return knowledge.CBox(s, f) }

// Henceforth is the future-time □ (now and later).
func Henceforth(f Formula) Formula { return knowledge.Henceforth(f) }

// Future is the future-time ◇ (now or later).
func Future(f Formula) Formula { return knowledge.Future(f) }

// EDiamond is E◇_S φ: everyone in S will eventually believe φ.
func EDiamond(s NonrigidSet, f Formula) Formula { return knowledge.EDiamond(s, f) }

// CDiamond is eventual common knowledge C◇_S φ (Section 3.2: too
// weak a basis for EBA decisions — the motivation for C□).
func CDiamond(s NonrigidSet, f Formula) Formula { return knowledge.CDiamond(s, f) }

// Nonfaulty is the nonrigid set 𝒩.
func Nonfaulty() NonrigidSet { return knowledge.Nonfaulty() }

// NAnd is 𝒩 ∧ 𝒜 for a decision set 𝒜.
func NAnd(a DecisionSet) NonrigidSet { return core.NAnd(a) }

// Decision pairs and protocols.

// NeverDecide is F^Λ: the full-information protocol in which no
// processor ever decides — the canonical seed for the optimization.
func NeverDecide() Pair {
	return Pair{Name: "FΛ", Z: fip.Empty("FΛ.Z"), O: fip.Empty("FΛ.O")}
}

// FIP adapts a pair to the deterministic engine (shared interner).
func FIP(in *Interner, p Pair) Protocol { return fip.Protocol(in, p) }

// FIPWire adapts a pair to any engine including RunLive (per-process
// interners, serialized views).
func FIPWire(p Pair) Protocol { return fip.WireProtocol(p) }

// DecisionAt returns the pair's decision for a processor in a run.
func DecisionAt(sys *System, p Pair, run *SysRun, proc ProcID) (Value, Round, bool) {
	return fip.DecisionAt(sys, p, run, proc)
}

// P0 is the LF82 flooding protocol biased to 0 (Proposition 2.1).
func P0() Protocol { return protocols.LF82(types.Zero) }

// P1 is the symmetric protocol biased to 1.
func P1() Protocol { return protocols.LF82(types.One) }

// P0Opt is the optimal crash-mode EBA protocol of Section 2.2.
func P0Opt() Protocol { return protocols.P0Opt() }

// P0OptHalting is P0opt with the halting optimization of Section 2.3
// (stop sending one round after deciding).
func P0OptHalting() Protocol { return protocols.P0OptHalting() }

// F0Pair is the Section 3.2 eventual-common-knowledge protocol F₀,
// materialized over the evaluator's system.
func F0Pair(e *Evaluator) Pair { return core.F0Pair(e) }

// Chain0 is the certificate-passing 0-chain EBA protocol for the
// omission mode (Section 6.2).
func Chain0() Protocol { return protocols.Chain0() }

// P0Pair is P0's decision rule as a pair.
func P0Pair(t int) Pair { return protocols.P0Pair(t) }

// P1Pair is P1's decision rule as a pair.
func P1Pair(t int) Pair { return protocols.P1Pair(t) }

// P0OptPair is P0opt's decision rule as a pair (= 𝒵^cr, 𝒪^cr of
// Theorem 6.1).
func P0OptPair() Pair { return protocols.P0OptPair() }

// Chain0Pair is the syntactic decision pair of the chain protocol
// (= FIP(𝒵⁰, 𝒪⁰) at nonfaulty states).
func Chain0Pair() Pair { return protocols.Chain0SyntacticPair() }

// Chain0SemanticPair materializes FIP(𝒵⁰, 𝒪⁰) semantically over the
// evaluator's system.
func Chain0SemanticPair(e *Evaluator) Pair { return protocols.Chain0SemanticPair(e) }

// The construction (Section 5).

// PrimeStep optimizes the decision on 0 given the pair's rule for 1
// (Proposition 5.1).
func PrimeStep(e *Evaluator, p Pair, name string) Pair { return core.PrimeStep(e, p, name) }

// DoublePrimeStep optimizes the decision on 1 given the pair's rule
// for 0 (Proposition 5.1).
func DoublePrimeStep(e *Evaluator, p Pair, name string) Pair {
	return core.DoublePrimeStep(e, p, name)
}

// TwoStep is the two-step construction of Theorem 5.2: it turns any
// full-information nontrivial agreement protocol into an optimal one.
func TwoStep(e *Evaluator, p Pair) Pair { return core.TwoStep(e, p) }

// Optimize iterates TwoStep to a fixed point (Theorem 5.2 predicts at
// most one productive application).
func Optimize(e *Evaluator, p Pair, maxSteps int) (Pair, int) {
	return core.Optimize(e, p, maxSteps)
}

// General coordination problems (Section 7).

// CoordinationSpec is a one-shot binary coordination problem: two
// actions with run-constant enabling facts (EBA is Phi0 = ∃0,
// Phi1 = ∃1).
type CoordinationSpec = core.Spec

// EBASpec is the standard EBA instance.
func EBASpec() CoordinationSpec { return core.EBASpec() }

// TwoStepSpec runs the two-step construction for an arbitrary
// coordination spec.
func TwoStepSpec(e *Evaluator, spec CoordinationSpec, p Pair) Pair {
	return core.TwoStepSpec(e, spec, p)
}

// IsOptimalSpec is the generalized Theorem 5.3 oracle.
func IsOptimalSpec(e *Evaluator, spec CoordinationSpec, p Pair) (bool, string) {
	return core.IsOptimalSpec(e, spec, p)
}

// CheckEnabling verifies the generalized validity: nonfaulty
// processors decide an action only in runs enabling it.
func CheckEnabling(e *Evaluator, spec CoordinationSpec, p Pair) error {
	return core.CheckEnabling(e, spec, p)
}

// ParseFormula parses the ASCII formula syntax used by cmd/ebaq (see
// the knowledge package's Parse for the grammar).
func ParseFormula(src string) (Formula, error) { return knowledge.Parse(src) }

// The query service (cmd/ebad, cmd/ebaq).

type (
	// SystemStore is the persistent snapshot store: an LRU-bounded
	// in-memory layer over versioned, content-addressed on-disk
	// snapshots of enumerated systems and memoized truth tables.
	SystemStore = store.Store
	// StoreKey identifies one enumerated system: (n, t, mode, horizon)
	// plus the omission enumeration limit.
	StoreKey = store.Key
	// StoreStats are a store's cumulative cache statistics.
	StoreStats = store.Stats

	// QueryEngine executes formula queries over stored systems; safe
	// for concurrent use.
	QueryEngine = service.Engine
	// QueryRequest is one formula query.
	QueryRequest = service.Request
	// QueryResponse is a query result.
	QueryResponse = service.Response
	// QueryServer is the ebad HTTP surface over a QueryEngine.
	QueryServer = service.Server

	// AdmissionConfig bounds what a QueryServer accepts at once: a
	// global in-flight cap with a bounded deadline-aware wait queue,
	// and per-key caps on expensive (non-resident) computes. Excess
	// load sheds with 429 + Retry-After instead of degrading everyone.
	AdmissionConfig = service.AdmissionConfig
	// ShedError is a load-shed verdict from the admission layer.
	ShedError = service.ShedError

	// QueryClient is the retrying daemon client shared by ebaq -server,
	// the load generator, and CI smoke: it honors Retry-After on
	// 429/503 sheds with exponential backoff, jitter, and a retry
	// budget.
	QueryClient = service.Client

	// FaultConfig selects deterministic, seeded service-layer faults
	// (slow I/O, torn snapshot writes, transient store errors, stuck
	// computes); see FaultInjector.
	FaultConfig = faultinject.Config
	// FaultInjector wraps the store's filesystem and cold-path
	// enumerator with seeded faults for robustness tests.
	FaultInjector = faultinject.Injector

	// OverloadConfig shapes an overload ramp experiment against a
	// running daemon; see RunOverload.
	OverloadConfig = service.OverloadConfig
	// OverloadReport is the overload experiment's outcome: shed rate,
	// goodput, admitted-latency, and the recovery verdict.
	OverloadReport = service.OverloadReport

	// BatchRequest is a POST /v1/query/batch payload: up to 1024
	// queries answered in one round trip, in order.
	BatchRequest = service.BatchRequest
	// BatchResponse is a batch result; item failures are isolated
	// per-slot, never batch-fatal.
	BatchResponse = service.BatchResponse
	// BatchItem is one slot of a BatchResponse.
	BatchItem = service.BatchItem

	// ClusterConfig assembles one node's view of a query fleet: its
	// own name, the static peer list, and the ring/probe tuning.
	ClusterConfig = cluster.Config
	// ClusterNode names one fleet member and its base URL.
	ClusterNode = cluster.Node
	// Cluster is one node's distribution layer — the consistent-hash
	// ring and this node's liveness view — attachable to a
	// QueryServer so queries route to their key's owner and snapshots
	// replicate between peers by content address (DESIGN.md §12).
	Cluster = cluster.Cluster
	// ClusterLoadOptions shapes a fleet throughput measurement.
	ClusterLoadOptions = cluster.LoadOptions
	// ClusterLoadReport is the fleet measurement outcome; the
	// committed BENCH_cluster.json is one of these.
	ClusterLoadReport = cluster.LoadReport
)

// ErrStoreRetryable marks store errors a caller may retry fresh — a
// singleflight follower whose leader's load failed, for example.
var ErrStoreRetryable = store.ErrRetryable

// ErrFaultInjected is the sentinel wrapped by every injected fault.
var ErrFaultInjected = faultinject.ErrInjected

// OpenStore opens a snapshot store rooted at dir ("" = memory-only);
// maxMem bounds resident systems (<= 0 picks the default).
func OpenStore(dir string, maxMem int) (*SystemStore, error) { return store.Open(dir, maxMem) }

// NewQueryEngine wraps a store for query execution; timeout bounds
// each query (0 = none).
func NewQueryEngine(st *SystemStore, timeout time.Duration) *QueryEngine {
	return service.NewEngine(st, timeout)
}

// NewQueryServer builds the daemon's HTTP handler set over an engine.
func NewQueryServer(e *QueryEngine) *QueryServer { return service.NewServer(e) }

// NewQueryClient builds a retrying daemon client with the default
// retry policy plus the EBA_RETRY_MAX / EBA_RETRY_BUDGET environment
// overrides.
func NewQueryClient(baseURL string) *QueryClient { return service.NewClient(baseURL) }

// NewFaultInjector builds a seeded fault injector; a zero config
// injects nothing.
func NewFaultInjector(cfg FaultConfig) *FaultInjector { return faultinject.New(cfg) }

// RunOverload ramps offered QPS past a daemon's admission capacity,
// open-loop, and reports shedding, goodput, admitted latency, and
// whether the daemon recovered to a healthy verdict afterwards.
func RunOverload(ctx context.Context, baseURL string, reqs []QueryRequest, cfg OverloadConfig) (*OverloadReport, error) {
	return service.RunOverload(ctx, baseURL, reqs, cfg)
}

// NewCluster validates cfg and builds one node's ring and membership
// table; Attach wires it into an engine/server/store triple and Start
// begins liveness probing.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return cluster.New(cfg) }

// ParseClusterPeers parses a "name=url,name=url,..." fleet list (the
// ebad -peers flag format).
func ParseClusterPeers(s string) ([]ClusterNode, error) { return cluster.ParsePeers(s) }

// RunClusterLoad drives a fleet with locality-aware batch load and
// reports aggregate throughput; any item-level failure is counted.
func RunClusterLoad(ctx context.Context, targets []string, reqs []QueryRequest, opts ClusterLoadOptions) (*ClusterLoadReport, error) {
	return cluster.RunLoad(ctx, targets, reqs, opts)
}

// Checkers.

// CheckEBA verifies decision, agreement, and validity on every run.
func CheckEBA(sys *System, p Pair) error { return core.CheckEBA(sys, p) }

// CheckDecision verifies that every nonfaulty processor decides
// within the horizon.
func CheckDecision(sys *System, p Pair) error { return core.CheckDecision(sys, p) }

// CheckWeakAgreement verifies that nonfaulty processors never decide
// differently.
func CheckWeakAgreement(sys *System, p Pair) error { return core.CheckWeakAgreement(sys, p) }

// CheckWeakValidity verifies that unanimous inputs force the decision.
func CheckWeakValidity(sys *System, p Pair) error { return core.CheckWeakValidity(sys, p) }

// Dominates reports whether a dominates b (every nonfaulty decider
// decides at least as soon).
func Dominates(sys *System, a, b Pair) bool { return core.Dominates(sys, a, b) }

// StrictlyDominates reports domination with a strict win somewhere.
func StrictlyDominates(sys *System, a, b Pair) bool { return core.StrictlyDominates(sys, a, b) }

// IsOptimal applies the Theorem 5.3 characterization of optimal
// protocols; on failure it returns a counterexample description.
func IsOptimal(e *Evaluator, p Pair) (bool, string) { return core.IsOptimal(e, p) }

// EqualOnNonfaulty reports whether two pairs decide identically at
// all nonfaulty states (the equivalence of Theorem 6.2).
func EqualOnNonfaulty(sys *System, a, b Pair) (bool, string) {
	return core.EqualOnNonfaulty(sys, a, b)
}

// MaxNonfaultyDecisionRound returns the worst-case decision time.
func MaxNonfaultyDecisionRound(sys *System, p Pair) (Round, bool) {
	return core.MaxNonfaultyDecisionRound(sys, p)
}

// DecisionHistogram counts nonfaulty decisions per decision time
// (undecided under key -1).
func DecisionHistogram(sys *System, p Pair) map[Round]int {
	return core.DecisionHistogram(sys, p)
}

// CheckProp63 certifies Proposition 6.3 (F^Λ,2 never decides in the
// all-ones omission run with a silent processor, t ≥ 2) by sound
// witness search.
func CheckProp63(n, t, h int) (*Prop63Report, error) { return witness.CheckProp63(n, t, h) }

// Byzantine agreement (the problem's origin, PSL80).

// ByzAdversary fabricates a Byzantine processor's messages.
type ByzAdversary = byzantine.Adversary

// EIGByz is the oral-messages exponential-information-gathering
// protocol: t+1 rounds, correct for n > 3t. Run it with a
// failure-free pattern of horizon ≥ t+1; Byzantine misbehaviour is
// content fabrication by the processors in byz, driven by adv.
func EIGByz(t int, byz ProcSet, adv ByzAdversary) Protocol {
	return byzantine.Protocol(t, byz, adv)
}

// TwoFacedAdversary reports different values to destinations below
// and above the split — the classic splitting strategy.
func TwoFacedAdversary(split ProcID, tellLow, tellHigh Value) ByzAdversary {
	return byzantine.TwoFaced{Split: split, TellLow: tellLow, TellHigh: tellHigh}
}

// Simultaneous Byzantine agreement (the contrast class).

// SBAOutcome is a run's simultaneous decision.
type SBAOutcome = sba.Outcome

// FloodSet is the textbook t+1-round simultaneous agreement protocol
// for the crash mode.
func FloodSet() Protocol { return sba.FloodSet() }

// SBAOutcomes evaluates the optimal common-knowledge SBA rule (DM90)
// on every run of the evaluator's system.
func SBAOutcomes(e *Evaluator) []SBAOutcome { return sba.CommonKnowledgeOutcomes(e) }

// CheckSBAOutcomes verifies decision and validity for per-run
// simultaneous outcomes.
func CheckSBAOutcomes(sys *System, outs []SBAOutcome) error { return sba.CheckOutcomes(sys, outs) }

// The conformance harness (cmd/ebaconform).

// ConformOptions configures a randomized conformance run; see the
// conform package for the three pillars (differential, laws, oracle).
type ConformOptions = conform.Options

// ConformResult summarizes a conformance run.
type ConformResult = conform.Result

// ConformViolation is one failed check — also the JSONL corpus record
// format; its Seed field replays the scenario alone.
type ConformViolation = conform.Violation

// RunConformance executes seeded scenarios across the live runtime,
// the deterministic engine, and the query engine, machine-checking
// the paper's epistemic laws and the Theorem 5.3 optimality oracle on
// every generated system.
func RunConformance(opts ConformOptions) (*ConformResult, error) { return conform.Run(opts) }

// ReadConformCorpus parses a JSONL failure corpus written by a
// conformance run.
func ReadConformCorpus(path string) ([]ConformViolation, error) { return conform.ReadCorpus(path) }
