// Benchmarks: one per reproduction experiment (the paper's
// propositions/theorems play the role of tables and figures — see
// DESIGN.md's per-experiment index), plus micro-benchmarks of the
// substrates (enumeration, interning, knowledge evaluation, and both
// execution engines).
package eba_test

import (
	"testing"

	eba "github.com/eventual-agreement/eba"
	"github.com/eventual-agreement/eba/internal/exp"
)

// benchExperiment runs one experiment per iteration and fails the
// benchmark if the reproduction does not pass.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := exp.Find(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	for i := 0; i < b.N; i++ {
		res, err := e.Run()
		if err != nil {
			b.Fatal(err)
		}
		if !res.Pass {
			b.Fatalf("%s failed: %s", id, res.Summary)
		}
	}
}

func BenchmarkE1NoOptimum(b *testing.B)              { benchExperiment(b, "E1") }
func BenchmarkE2Dominance(b *testing.B)              { benchExperiment(b, "E2") }
func BenchmarkE3S5(b *testing.B)                     { benchExperiment(b, "E3") }
func BenchmarkE4CBoxAxioms(b *testing.B)             { benchExperiment(b, "E4") }
func BenchmarkE5StrictlyStronger(b *testing.B)       { benchExperiment(b, "E5") }
func BenchmarkE6CrashOptimal(b *testing.B)           { benchExperiment(b, "E6") }
func BenchmarkE7OmissionNontermination(b *testing.B) { benchExperiment(b, "E7") }
func BenchmarkE8ChainBound(b *testing.B)             { benchExperiment(b, "E8") }
func BenchmarkE9OmissionOptimal(b *testing.B)        { benchExperiment(b, "E9") }
func BenchmarkE10Characterization(b *testing.B)      { benchExperiment(b, "E10") }
func BenchmarkE11WorstCase(b *testing.B)             { benchExperiment(b, "E11") }
func BenchmarkE12Distributions(b *testing.B)         { benchExperiment(b, "E12") }
func BenchmarkE13EBAvsSBA(b *testing.B)              { benchExperiment(b, "E13") }
func BenchmarkE14EventualCK(b *testing.B)            { benchExperiment(b, "E14") }
func BenchmarkE15Halting(b *testing.B)               { benchExperiment(b, "E15") }
func BenchmarkE16Uniform(b *testing.B)               { benchExperiment(b, "E16") }
func BenchmarkE17Byzantine(b *testing.B)             { benchExperiment(b, "E17") }
func BenchmarkE18MessageSize(b *testing.B)           { benchExperiment(b, "E18") }
func BenchmarkE19Multivalued(b *testing.B)           { benchExperiment(b, "E19") }
func BenchmarkE20WasteRule(b *testing.B)             { benchExperiment(b, "E20") }
func BenchmarkE21Coordination(b *testing.B)          { benchExperiment(b, "E21") }
func BenchmarkA1Horizon(b *testing.B)                { benchExperiment(b, "A1") }
func BenchmarkA2Interning(b *testing.B)              { benchExperiment(b, "A2") }
func BenchmarkA3CBoxAlgorithms(b *testing.B)         { benchExperiment(b, "A3") }
func BenchmarkA4ConvergenceDepth(b *testing.B)       { benchExperiment(b, "A4") }

// --- substrate micro-benchmarks ---

// BenchmarkSystemEnumerationCrash measures enumerating the n=4, t=1,
// h=3 crash system (1424 runs) including view interning.
func BenchmarkSystemEnumerationCrash(b *testing.B) {
	params := eba.Params{N: 4, T: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := eba.NewSystem(params, eba.Crash, 3, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSystemEnumerationOmission measures the n=3, t=1, h=3
// omission system (1544 runs).
func BenchmarkSystemEnumerationOmission(b *testing.B) {
	params := eba.Params{N: 3, T: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := eba.NewSystem(params, eba.Omission, 3, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCBoxEvaluation measures one continual-common-knowledge
// table over a fresh evaluator (run-level reachability).
func BenchmarkCBoxEvaluation(b *testing.B) {
	sys, err := eba.NewSystem(eba.Params{N: 4, T: 1}, eba.Crash, 3, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := eba.NewEvaluator(sys)
		e.Eval(eba.CBox(eba.Nonfaulty(), eba.Exists0()))
	}
}

// BenchmarkTwoStep measures the full two-step construction on the
// n=3, t=1 crash system.
func BenchmarkTwoStep(b *testing.B) {
	sys, err := eba.NewSystem(eba.Params{N: 3, T: 1}, eba.Crash, 3, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := eba.NewEvaluator(sys)
		eba.TwoStep(e, eba.NeverDecide())
	}
}

// BenchmarkSimEngine measures one deterministic P0opt run at n=8.
func BenchmarkSimEngine(b *testing.B) {
	params := eba.Params{N: 8, T: 2}
	cfg := eba.ConfigFromBits(8, 0b10110100)
	pat := eba.Silent(eba.Crash, 8, 4, 3, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := eba.Run(eba.P0Opt(), params, cfg, pat); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTransportEngine measures the same run on the goroutine
// runtime (goroutine + channel overhead per round).
func BenchmarkTransportEngine(b *testing.B) {
	params := eba.Params{N: 8, T: 2}
	cfg := eba.ConfigFromBits(8, 0b10110100)
	pat := eba.Silent(eba.Crash, 8, 4, 3, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := eba.RunLive(eba.P0Opt(), params, cfg, pat); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChain0Omission measures a live chain-protocol run under an
// adversarial omission pattern at n=8.
func BenchmarkChain0Omission(b *testing.B) {
	params := eba.Params{N: 8, T: 2}
	cfg := eba.ConfigFromBits(8, 0b11111110)
	pat := eba.SilentExcept(8, 4, 0, 2, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := eba.RunLive(eba.Chain0(), params, cfg, pat); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNetTransport measures a full TCP-mesh run (dial + rounds)
// for the wire-format FIP at n=4.
func BenchmarkNetTransport(b *testing.B) {
	params := eba.Params{N: 4, T: 1}
	cfg := eba.ConfigFromBits(4, 0b1110)
	pat := eba.Silent(eba.Crash, 4, 3, 2, 2)
	proto := eba.FIPWire(eba.P0OptPair())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := eba.RunTCP(proto, params, cfg, pat); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunAllParallel measures the worker-pool sweep against the
// sequential baseline workload (n=4, t=1 crash, P0opt).
func BenchmarkRunAllParallel(b *testing.B) {
	pats, err := eba.EnumCrash(4, 1, 3)
	if err != nil {
		b.Fatal(err)
	}
	params := eba.Params{N: 4, T: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eba.RunAllParallel(eba.P0Opt(), params, pats, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunAllSequential is the baseline for BenchmarkRunAllParallel.
func BenchmarkRunAllSequential(b *testing.B) {
	pats, err := eba.EnumCrash(4, 1, 3)
	if err != nil {
		b.Fatal(err)
	}
	params := eba.Params{N: 4, T: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eba.RunAll(eba.P0Opt(), params, pats); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFormulaParse measures the query parser.
func BenchmarkFormulaParse(b *testing.B) {
	const src = "B0 (E0 & Cbox E0) -> (C E1 <-> !dia knows2=0)"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := eba.ParseFormula(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimalityOracle measures one Theorem 5.3 check.
func BenchmarkOptimalityOracle(b *testing.B) {
	sys, err := eba.NewSystem(eba.Params{N: 3, T: 1}, eba.Crash, 3, 0)
	if err != nil {
		b.Fatal(err)
	}
	pair := eba.P0OptPair()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := eba.NewEvaluator(sys)
		if ok, reason := eba.IsOptimal(e, pair); !ok {
			b.Fatal(reason)
		}
	}
}
