package eba_test

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	eba "github.com/eventual-agreement/eba"
	"github.com/eventual-agreement/eba/internal/store"
)

// parallelBenchKeys are the acceptance workloads for the parallel cold
// path: the two largest exhaustive adversaries the repo enumerates.
func parallelBenchKeys() []eba.StoreKey {
	return []eba.StoreKey{
		{N: 4, T: 2, Mode: eba.Crash, Horizon: 4},
		{N: 4, T: 2, Mode: eba.Omission, Horizon: 2},
	}
}

// BenchmarkColdEnumerateSequential is the 1-worker baseline on the
// omission acceptance workload.
func BenchmarkColdEnumerateSequential(b *testing.B) {
	key := eba.StoreKey{N: 4, T: 2, Mode: eba.Omission, Horizon: 2}
	for i := 0; i < b.N; i++ {
		if _, err := eba.NewSystemParallel(eba.Params{N: key.N, T: key.T}, key.Mode, key.Horizon, key.Limit, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkColdEnumerateParallel is the all-cores build of the same
// workload; compare against BenchmarkColdEnumerateSequential.
func BenchmarkColdEnumerateParallel(b *testing.B) {
	key := eba.StoreKey{N: 4, T: 2, Mode: eba.Omission, Horizon: 2}
	for i := 0; i < b.N; i++ {
		if _, err := eba.NewSystemParallel(eba.Params{N: key.N, T: key.T}, key.Mode, key.Horizon, key.Limit, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// TestParallelColdSpeedup is the PR's acceptance measurement: the
// parallel cold enumeration of the n=4 t=2 workloads, against the
// 1-worker baseline, with the determinism pin asserted on every pair —
// the parallel snapshot digest must be byte-identical to the
// sequential one. The ≥2× speedup floor applies only on machines with
// at least 4 CPUs (single-core runners can only measure the merge
// overhead); the measured numbers are always reported, and written to
// BENCH_PARALLEL_OUT for the BENCH_parallel.json artifact.
func TestParallelColdSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test; skipped in -short")
	}
	cpus := runtime.NumCPU()
	type row struct {
		Workload     string  `json:"workload"`
		Runs         int     `json:"runs"`
		Points       int     `json:"points"`
		Views        int     `json:"views"`
		SequentialNS int64   `json:"sequential_ns"`
		ParallelNS   int64   `json:"parallel_ns"`
		Speedup      float64 `json:"speedup"`
		Digest       string  `json:"digest"`
	}
	var rows []row
	for _, key := range parallelBenchKeys() {
		params := eba.Params{N: key.N, T: key.T}

		start := time.Now()
		seq, err := eba.NewSystemParallel(params, key.Mode, key.Horizon, key.Limit, 1)
		seqT := time.Since(start)
		if err != nil {
			t.Fatal(err)
		}
		start = time.Now()
		par, err := eba.NewSystemParallel(params, key.Mode, key.Horizon, key.Limit, 0)
		parT := time.Since(start)
		if err != nil {
			t.Fatal(err)
		}

		// Determinism pin: identical snapshot bytes, not just counts.
		seqData, err := store.EncodeSystem(key, seq)
		if err != nil {
			t.Fatal(err)
		}
		parData, err := store.EncodeSystem(key, par)
		if err != nil {
			t.Fatal(err)
		}
		seqDigest, parDigest := store.Digest(seqData), store.Digest(parData)
		if seqDigest != parDigest {
			t.Fatalf("%s: parallel digest %s != sequential %s", key, parDigest, seqDigest)
		}

		speedup := float64(seqT) / float64(parT)
		t.Logf("%s: sequential %v, parallel %v (%d cpus), speedup %.2f×, digest %s",
			key, seqT, parT, cpus, speedup, seqDigest[:16])
		rows = append(rows, row{
			Workload: key.String(), Runs: seq.NumRuns(), Points: seq.NumPoints(),
			Views: seq.Interner.Size(), SequentialNS: seqT.Nanoseconds(),
			ParallelNS: parT.Nanoseconds(), Speedup: speedup, Digest: seqDigest,
		})

		if cpus >= 4 && key.Mode == eba.Omission && speedup < 2.0 {
			t.Errorf("%s: parallel speedup %.2f× below the 2× floor on a %d-cpu machine", key, speedup, cpus)
		}
	}

	if out := os.Getenv("BENCH_PARALLEL_OUT"); out != "" {
		blob, err := json.MarshalIndent(map[string]any{
			"cpus":           cpus,
			"gomaxprocs":     runtime.GOMAXPROCS(0),
			"speedup_floor":  2.0,
			"floor_enforced": cpus >= 4,
			"determinism":    "parallel snapshot digest asserted byte-identical to sequential",
			"workloads":      rows,
		}, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		blob = append(blob, '\n')
		if err := os.WriteFile(out, blob, 0o644); err != nil {
			t.Fatalf("write %s: %v", out, err)
		}
	}
}
