package eba_test

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	eba "github.com/eventual-agreement/eba"
	"github.com/eventual-agreement/eba/internal/knowledge"
	"github.com/eventual-agreement/eba/internal/store"
)

// parallelBenchKeys are the acceptance workloads for the parallel cold
// path: the two largest exhaustive adversaries the repo enumerates.
func parallelBenchKeys() []eba.StoreKey {
	return []eba.StoreKey{
		{N: 4, T: 2, Mode: eba.Crash, Horizon: 4},
		{N: 4, T: 2, Mode: eba.Omission, Horizon: 2},
	}
}

// seedSequentialNS is the committed v1 BENCH_parallel.json sequential
// baseline (the pre-kernel serial cold path, measured on the same
// container that produced the committed v2 numbers). The ratio
// seed/current in the v2 report is the single-thread improvement from
// the arena interner, binary hash-cons keys, counting-sort byView
// index, and flat run-row backing arrays.
var seedSequentialNS = map[string]int64{
	"crash-n4-t2-h4":    1923017994,
	"omission-n4-t2-h2": 3985894530,
}

// seedFillNS is the pre-kernel single-thread truth-table fill of
// fillFormula on omission-n4-t2-h2, measured at the seed commit on the
// same container (bit-by-bit evalK/evalE scans and per-Eval frontier
// rebuilds).
const seedFillNS int64 = 271_000_000

// fillFormula exercises every batched eval kernel: evalK class scans,
// the word-level E_S sweep, and both the C and C□ fixed points.
const fillFormula = "C E0 -> Cbox E0"

// BenchmarkColdEnumerateSequential is the 1-worker baseline on the
// omission acceptance workload.
func BenchmarkColdEnumerateSequential(b *testing.B) {
	key := eba.StoreKey{N: 4, T: 2, Mode: eba.Omission, Horizon: 2}
	for i := 0; i < b.N; i++ {
		if _, err := eba.NewSystemParallel(eba.Params{N: key.N, T: key.T}, key.Mode, key.Horizon, key.Limit, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkColdEnumerateParallel is the all-cores build of the same
// workload; compare against BenchmarkColdEnumerateSequential.
func BenchmarkColdEnumerateParallel(b *testing.B) {
	key := eba.StoreKey{N: 4, T: 2, Mode: eba.Omission, Horizon: 2}
	for i := 0; i < b.N; i++ {
		if _, err := eba.NewSystemParallel(eba.Params{N: key.N, T: key.T}, key.Mode, key.Horizon, key.Limit, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTruthTableFill is the single-thread eval-kernel benchmark:
// one full truth-table fill of fillFormula over the enumerated
// omission-n4-t2-h2 system.
func BenchmarkTruthTableFill(b *testing.B) {
	sys, err := eba.NewSystemParallel(eba.Params{N: 4, T: 2}, eba.Omission, 2, 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	f, err := knowledge.Parse(fillFormula)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := knowledge.NewEvaluator(sys)
		ev.SetParallelism(1)
		ev.Eval(f)
	}
}

// TestParallelColdSpeedup is the PR's acceptance measurement, v2: the
// parallel cold enumeration of the n=4 t=2 workloads against the
// 1-worker baseline, plus the single-thread truth-table fill of
// fillFormula, with the determinism pin asserted on every pair — the
// parallel snapshot digest must be byte-identical to the sequential
// one. The ≥3× speedup floor applies only on machines with at least 4
// CPUs (single-core runners can only measure the merge overhead); the
// measured numbers are always reported, and written to
// BENCH_PARALLEL_OUT for the BENCH_parallel.json v2 artifact together
// with GOMAXPROCS and the committed seed baselines.
func TestParallelColdSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test; skipped in -short")
	}
	cpus := runtime.NumCPU()
	type row struct {
		Workload         string  `json:"workload"`
		Runs             int     `json:"runs"`
		Points           int     `json:"points"`
		Views            int     `json:"views"`
		SequentialNS     int64   `json:"sequential_ns"`
		ParallelNS       int64   `json:"parallel_ns"`
		Speedup          float64 `json:"speedup"`
		SeedSequentialNS int64   `json:"seed_sequential_ns,omitempty"`
		SingleThreadGain float64 `json:"single_thread_gain_vs_seed,omitempty"`
		FillNS           int64   `json:"fill_ns"`
		SeedFillNS       int64   `json:"seed_fill_ns,omitempty"`
		FillGain         float64 `json:"fill_gain_vs_seed,omitempty"`
		Digest           string  `json:"digest"`
	}
	fill, err := knowledge.Parse(fillFormula)
	if err != nil {
		t.Fatal(err)
	}
	var rows []row
	for _, key := range parallelBenchKeys() {
		params := eba.Params{N: key.N, T: key.T}

		start := time.Now()
		seq, err := eba.NewSystemParallel(params, key.Mode, key.Horizon, key.Limit, 1)
		seqT := time.Since(start)
		if err != nil {
			t.Fatal(err)
		}
		start = time.Now()
		par, err := eba.NewSystemParallel(params, key.Mode, key.Horizon, key.Limit, 0)
		parT := time.Since(start)
		if err != nil {
			t.Fatal(err)
		}

		// Determinism pin: identical snapshot bytes, not just counts.
		seqData, err := store.EncodeSystem(key, seq)
		if err != nil {
			t.Fatal(err)
		}
		parData, err := store.EncodeSystem(key, par)
		if err != nil {
			t.Fatal(err)
		}
		seqDigest, parDigest := store.Digest(seqData), store.Digest(parData)
		if seqDigest != parDigest {
			t.Fatalf("%s: parallel digest %s != sequential %s", key, parDigest, seqDigest)
		}

		// Single-thread truth-table fill on the sequentially built
		// system: the eval-kernel leg of the acceptance measurement.
		// Best of three, each with a fresh evaluator so every attempt
		// pays the full cold cost (frontier build included); the min
		// filters scheduler noise, not work.
		var fillT time.Duration
		for attempt := 0; attempt < 3; attempt++ {
			ev := knowledge.NewEvaluator(seq)
			ev.SetParallelism(1)
			start = time.Now()
			ev.Eval(fill)
			if d := time.Since(start); attempt == 0 || d < fillT {
				fillT = d
			}
		}

		speedup := float64(seqT) / float64(parT)
		t.Logf("%s: sequential %v, parallel %v (%d cpus), speedup %.2f×, fill %v, digest %s",
			key, seqT, parT, cpus, speedup, fillT, seqDigest[:16])
		r := row{
			Workload: key.String(), Runs: seq.NumRuns(), Points: seq.NumPoints(),
			Views: seq.Interner.Size(), SequentialNS: seqT.Nanoseconds(),
			ParallelNS: parT.Nanoseconds(), Speedup: speedup,
			FillNS: fillT.Nanoseconds(), Digest: seqDigest,
		}
		if seed, ok := seedSequentialNS[key.String()]; ok {
			r.SeedSequentialNS = seed
			r.SingleThreadGain = float64(seed) / float64(seqT.Nanoseconds())
		}
		if key.Mode == eba.Omission {
			r.SeedFillNS = seedFillNS
			r.FillGain = float64(seedFillNS) / float64(fillT.Nanoseconds())
		}
		rows = append(rows, r)

		if cpus >= 4 && key.Mode == eba.Omission && speedup < 3.0 {
			t.Errorf("%s: parallel speedup %.2f× below the 3× floor on a %d-cpu machine", key, speedup, cpus)
		}
	}

	if out := os.Getenv("BENCH_PARALLEL_OUT"); out != "" {
		blob, err := json.MarshalIndent(map[string]any{
			"bench_version":  2,
			"cpus":           cpus,
			"gomaxprocs":     runtime.GOMAXPROCS(0),
			"speedup_floor":  3.0,
			"floor_enforced": cpus >= 4,
			"determinism":    "parallel snapshot digest asserted byte-identical to sequential",
			"seed_reference": "seed_* fields are the committed v1 (pre-kernel) numbers from the same container; *_gain_vs_seed is seed/current",
			"fill_formula":   fillFormula,
			"workloads":      rows,
		}, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		blob = append(blob, '\n')
		if err := os.WriteFile(out, blob, 0o644); err != nil {
			t.Fatalf("write %s: %v", out, err)
		}
	}
}
