package eba_test

import (
	"math/rand"
	"testing"

	eba "github.com/eventual-agreement/eba"
)

// TestEndToEndCrash walks the full public workflow in the crash mode:
// enumerate a system, derive the optimal protocol from the
// never-deciding one, verify it against the paper's oracles, and run
// its concrete equivalent on both engines.
func TestEndToEndCrash(t *testing.T) {
	params := eba.Params{N: 3, T: 1}
	sys, err := eba.NewSystem(params, eba.Crash, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	e := eba.NewEvaluator(sys)

	opt := eba.TwoStep(e, eba.NeverDecide())
	if err := eba.CheckEBA(sys, opt); err != nil {
		t.Fatal(err)
	}
	if ok, reason := eba.IsOptimal(e, opt); !ok {
		t.Fatal(reason)
	}
	if equal, diff := eba.EqualOnNonfaulty(sys, opt, eba.P0OptPair()); !equal {
		t.Fatalf("Theorem 6.2 violated: %s", diff)
	}
	if !eba.StrictlyDominates(sys, opt, eba.P0Pair(params.T)) {
		t.Fatal("optimum should strictly dominate P0")
	}
	max, all := eba.MaxNonfaultyDecisionRound(sys, opt)
	if !all || max != eba.Round(params.T+1) {
		t.Fatalf("worst case %d (all=%v), want t+1", max, all)
	}

	// Concrete P0opt, deterministically and live.
	cfg := eba.ConfigFromBits(3, 0b110)
	pat := eba.Silent(eba.Crash, 3, 3, 2, 2)
	tr1, err := eba.Run(eba.P0Opt(), params, cfg, pat)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := eba.RunLive(eba.P0Opt(), params, cfg, pat)
	if err != nil {
		t.Fatal(err)
	}
	for p := eba.ProcID(0); p < 3; p++ {
		v1, a1, ok1 := tr1.DecisionOf(p)
		v2, a2, ok2 := tr2.DecisionOf(p)
		if v1 != v2 || a1 != a2 || ok1 != ok2 {
			t.Fatalf("engines disagree for proc %d", p)
		}
	}
	if !tr1.NonfaultyDecided() {
		t.Fatal("undecided nonfaulty processor")
	}
}

// TestEndToEndOmission exercises the omission-mode artifacts: the
// chain protocol, its optimal improvement F*, and the knowledge DSL.
func TestEndToEndOmission(t *testing.T) {
	params := eba.Params{N: 3, T: 1}
	sys, err := eba.NewSystem(params, eba.Omission, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	e := eba.NewEvaluator(sys)

	chain := eba.Chain0SemanticPair(e)
	if err := eba.CheckEBA(sys, chain); err != nil {
		t.Fatal(err)
	}
	fstar := eba.PrimeStep(e, chain, "F*")
	if !eba.Dominates(sys, fstar, chain) {
		t.Fatal("F* must dominate the chain protocol")
	}
	if ok, reason := eba.IsOptimal(e, fstar); !ok {
		t.Fatal(reason)
	}

	// The knowledge DSL: C□ is strictly stronger than C.
	nf := eba.Nonfaulty()
	if !e.Valid(eba.Implies(eba.CBox(nf, eba.Exists1()), eba.C(nf, eba.Exists1()))) {
		t.Fatal("C□ ⇒ C should be valid")
	}
	if e.Valid(eba.Implies(eba.C(nf, eba.Exists1()), eba.CBox(nf, eba.Exists1()))) {
		t.Fatal("C ⇒ C□ should not be valid")
	}
	// And the run-modalities behave.
	if !e.Valid(eba.Iff(eba.Box(eba.Exists0()), eba.Exists0())) {
		t.Fatal("□̂ of a run-constant fact is itself")
	}
	if !e.Valid(eba.Or(eba.Diamond(eba.Exists0()), eba.Exists1())) {
		t.Fatal("every run has a 0 or a 1")
	}

	// Concrete chain protocol over the live runtime.
	cfg, err := eba.NewConfig(eba.Zero, eba.One, eba.One)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := eba.RunLive(eba.Chain0(), params, cfg, eba.SilentExcept(3, 2, 0, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if v, _, ok := tr.DecisionOf(1); !ok || v != eba.Zero {
		t.Fatal("processor 1 received the only copy of the 0 and must decide 0")
	}
}

// TestSBAFacade exercises the SBA contrast class.
func TestSBAFacade(t *testing.T) {
	params := eba.Params{N: 3, T: 1}
	sys, err := eba.NewSystem(params, eba.Crash, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	outs := eba.SBAOutcomes(eba.NewEvaluator(sys))
	if err := eba.CheckSBAOutcomes(sys, outs); err != nil {
		t.Fatal(err)
	}
	tr, err := eba.Run(eba.FloodSet(), params, eba.ConfigFromBits(3, 0b101), eba.FailureFree(eba.Crash, 3, 3))
	if err != nil {
		t.Fatal(err)
	}
	for p := eba.ProcID(0); p < 3; p++ {
		if v, at, ok := tr.DecisionOf(p); !ok || at != 2 || v != eba.Zero {
			t.Fatalf("FloodSet proc %d: (%v,%d,%v)", p, v, at, ok)
		}
	}
}

// TestSamplersAndEnumerators exercises the pattern utilities through
// the facade.
func TestSamplersAndEnumerators(t *testing.T) {
	if pats, err := eba.EnumCrash(3, 1, 2); err != nil || len(pats) != 22 {
		t.Fatalf("EnumCrash: %d, %v", len(pats), err)
	}
	if _, err := eba.EnumOmission(4, 2, 3, 10); err == nil {
		t.Fatal("limit not enforced")
	}
	rng := rand.New(rand.NewSource(1))
	cr, err := eba.SampleCrash(5, 2, 3, 10, rng)
	if err != nil || len(cr) != 10 {
		t.Fatalf("SampleCrash: %v", err)
	}
	om, err := eba.SampleOmission(5, 2, 3, 10, rng)
	if err != nil || len(om) != 10 {
		t.Fatalf("SampleOmission: %v", err)
	}
	trs, err := eba.RunAll(eba.P0(), eba.Params{N: 3, T: 1}, []*eba.Pattern{eba.FailureFree(eba.Crash, 3, 2)})
	if err != nil || len(trs) != 8 {
		t.Fatalf("RunAll: %v", err)
	}
	if _, err := eba.NewPattern(eba.Crash, 3, 2, eba.ProcSet(1), nil); err != nil {
		t.Fatal(err)
	}
}

// TestProp63Facade delegates the witness search (small horizon).
func TestProp63Facade(t *testing.T) {
	if testing.Short() {
		t.Skip("witness search takes ~1s")
	}
	rep, err := eba.CheckProp63(4, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Certified {
		t.Fatalf("not certified: %v", rep.Failures)
	}
}

// TestFIPAdapters runs a decision pair through both FIP adapters.
func TestFIPAdapters(t *testing.T) {
	params := eba.Params{N: 3, T: 1}
	sys, err := eba.NewSystem(params, eba.Crash, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	pair := eba.P0OptPair()
	run := sys.Runs[17]
	v, at, ok := eba.DecisionAt(sys, pair, run, 0)
	tr, err := eba.Run(eba.FIP(sys.Interner, pair), params, run.Config, run.Pattern)
	if err != nil {
		t.Fatal(err)
	}
	v2, at2, ok2 := tr.DecisionOf(0)
	if v != v2 || at != at2 || ok != ok2 {
		t.Fatal("FIP adapter disagrees with DecisionAt")
	}
	trw, err := eba.RunLive(eba.FIPWire(pair), params, run.Config, run.Pattern)
	if err != nil {
		t.Fatal(err)
	}
	v3, at3, ok3 := trw.DecisionOf(0)
	if v != v3 || at != at3 || ok != ok3 {
		t.Fatal("FIPWire adapter disagrees with DecisionAt")
	}
}
