package eba_test

import (
	"context"
	"encoding/json"
	"io"
	"os"
	"testing"
	"time"

	eba "github.com/eventual-agreement/eba"
	"github.com/eventual-agreement/eba/internal/service"
	"github.com/eventual-agreement/eba/internal/store"
	"github.com/eventual-agreement/eba/internal/telemetry"
)

// checkerWorkload is the instrumentation-overhead workload: enumerate
// the n=4 t=1 crash system, model-check continual common knowledge,
// and run the two-step optimization. It crosses every instrumented
// substrate layer (system enumeration, view interning, knowledge
// evaluation) on every iteration.
func checkerWorkload(b testing.TB) {
	params := eba.Params{N: 4, T: 1}
	sys, err := eba.NewSystem(params, eba.Crash, 3, 0)
	if err != nil {
		b.Fatal(err)
	}
	e := eba.NewEvaluator(sys)
	if tbl := e.Eval(eba.CBox(eba.Nonfaulty(), eba.Exists0())); tbl.Len() != sys.NumPoints() {
		b.Fatalf("truth table has %d points, want %d", tbl.Len(), sys.NumPoints())
	}
	opt := eba.TwoStep(e, eba.NeverDecide())
	if err := eba.CheckEBA(sys, opt); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkCheckerInstrumented measures the checker workload with
// telemetry recording (the default state).
func BenchmarkCheckerInstrumented(b *testing.B) {
	telemetry.SetEnabled(true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		checkerWorkload(b)
	}
}

// BenchmarkCheckerUninstrumented measures the same workload with every
// telemetry handle turned into a no-op, for the overhead comparison.
func BenchmarkCheckerUninstrumented(b *testing.B) {
	telemetry.SetEnabled(false)
	defer telemetry.SetEnabled(true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		checkerWorkload(b)
	}
}

// minTime returns the minimum wall time of reps runs of fn — minimum
// rather than mean because instrumentation overhead is a lower-bound
// shift, while scheduler noise only ever adds time.
func minTime(reps int, fn func()) time.Duration {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < reps; i++ {
		start := time.Now()
		fn()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

// TestTelemetryOverhead measures the instrumented-vs-uninstrumented
// checker and enforces the overhead budget. The budget in DESIGN.md is
// 5%; to keep tier-1 CI robust on noisy shared runners the default
// failure threshold is 25%, with the measured number always reported.
// Set EBA_TELEMETRY_STRICT=1 to enforce the 5% budget directly, and
// BENCH_TELEMETRY_OUT=<path> to write the measurement as JSON (the
// BENCH_telemetry.json artifact in CI).
func TestTelemetryOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test; skipped in -short")
	}
	defer telemetry.SetEnabled(true)

	const reps = 5
	work := func() { checkerWorkload(t) }

	// Warm up once so first-run allocator effects hit neither side.
	checkerWorkload(t)

	telemetry.SetEnabled(false)
	off := minTime(reps, work)
	telemetry.SetEnabled(true)
	on := minTime(reps, work)

	overhead := float64(on-off) / float64(off)
	t.Logf("checker n=4 t=1 crash h=3: uninstrumented %v, instrumented %v, overhead %+.2f%% (budget 5%%)",
		off, on, overhead*100)

	qOff, qOn, qBatch := tracedQueryOverhead(t)
	t.Logf("cached query ×%d: untraced %v, traced (ring + JSONL sink) %v, per-query delta %v",
		qBatch, qOff, qOn, (qOn-qOff)/time.Duration(qBatch))

	if out := os.Getenv("BENCH_TELEMETRY_OUT"); out != "" {
		blob, err := json.MarshalIndent(map[string]any{
			"workload":          "checker n=4 t=1 crash h=3 (enumerate + CBox + TwoStep + CheckEBA)",
			"uninstrumented_ns": off.Nanoseconds(),
			"instrumented_ns":   on.Nanoseconds(),
			"overhead_fraction": overhead,
			"budget_fraction":   0.05,
			"reps":              reps,
			"timing":            "min over reps",
			"traced_query_path": map[string]any{
				"workload":           "cached service queries through engine.Execute",
				"queries_per_batch":  qBatch,
				"untraced_batch_ns":  qOff.Nanoseconds(),
				"traced_batch_ns":    qOn.Nanoseconds(),
				"per_query_delta_ns": (qOn - qOff).Nanoseconds() / int64(qBatch),
				"sinks":              "retention ring (4096) + JSONL writer",
				"note":               "absolute per-query span cost; informational, the 5% budget applies to the checker workload",
			},
		}, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		blob = append(blob, '\n')
		if err := os.WriteFile(out, blob, 0o644); err != nil {
			t.Fatalf("write %s: %v", out, err)
		}
	}

	limit := 0.25
	if os.Getenv("EBA_TELEMETRY_STRICT") == "1" {
		limit = 0.05
	}
	if overhead > limit {
		t.Errorf("instrumentation overhead %.2f%% exceeds %.0f%% limit (budget 5%%)", overhead*100, limit*100)
	}
}

// tracedQueryOverhead measures what request-scoped tracing adds to the
// hot (memory-cached) query path: batches of engine queries with no
// sinks installed versus with the retention ring and a JSONL writer
// both live. Reported as an absolute per-query cost rather than a
// fraction: a cached query is microseconds, so a ratio would say more
// about the cache than about the tracing.
func tracedQueryOverhead(t *testing.T) (off, on time.Duration, batch int) {
	t.Helper()
	st, err := store.Open("", 4)
	if err != nil {
		t.Fatal(err)
	}
	eng := service.NewEngine(st, 0)
	req := service.Request{Formula: "Cbox E0 -> C E0"}
	runBatch := func(n int) {
		for i := 0; i < n; i++ {
			ctx := telemetry.ContextWithTraceID(context.Background(), telemetry.NewTraceID())
			if _, err := eng.Execute(ctx, req); err != nil {
				t.Fatal(err)
			}
		}
	}
	runBatch(1) // warm the cache: every measured query is a memory hit

	const reps, perBatch = 5, 200
	telemetry.SetTraceWriter(nil)
	telemetry.SetRing(0)
	off = minTime(reps, func() { runBatch(perBatch) })

	telemetry.SetTraceWriter(io.Discard)
	telemetry.SetRing(4096)
	defer telemetry.SetTraceWriter(nil)
	defer telemetry.SetRing(0)
	on = minTime(reps, func() { runBatch(perBatch) })
	return off, on, perBatch
}
