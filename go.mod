module github.com/eventual-agreement/eba

go 1.22
