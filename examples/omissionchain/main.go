// Omissionchain demonstrates Section 6.2: under sending omissions a
// naive "decide 0 when you hear of a 0" rule is unsafe; values must
// travel along 0-chains. The example runs the concrete Chain0
// protocol live against increasingly devious adversaries, shows the
// f+1 decision bound of Proposition 6.4, and builds the optimal F*
// from the chain protocol (Proposition 6.6).
package main

import (
	"fmt"
	"log"

	eba "github.com/eventual-agreement/eba"
)

func main() {
	const n, t, h = 4, 1, 3
	params := eba.Params{N: n, T: t}

	scenarios := []struct {
		name string
		cfg  eba.Config
		pat  *eba.Pattern
	}{
		{
			"failure-free, processor 0 holds a 0",
			eba.ConfigFromBits(n, 0b1110),
			eba.FailureFree(eba.Omission, n, h),
		},
		{
			"0-holder silent from round 1 (its 0 is lost)",
			eba.ConfigFromBits(n, 0b1110),
			eba.Silent(eba.Omission, n, h, 0, 1),
		},
		{
			"0-holder delivers only to processor 2 in round 1 (chain 0→2→rest)",
			eba.ConfigFromBits(n, 0b1110),
			eba.SilentExcept(n, h, 0, 1, 2),
		},
		{
			"stale certificate: single delivery only in round 2 is rejected",
			eba.ConfigFromBits(n, 0b1110),
			eba.SilentExcept(n, h, 0, 2, 2),
		},
	}

	for _, sc := range scenarios {
		tr, err := eba.RunLive(eba.Chain0(), params, sc.cfg, sc.pat)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("-- %s\n", sc.name)
		for _, d := range tr.Decisions() {
			fmt.Println("  ", d)
		}
	}

	// The knowledge-level account: FIP(𝒵⁰, 𝒪⁰) decides within f+1,
	// and its prime-step improvement F* is optimal.
	fmt.Println("-- knowledge level (exhaustive n=3 system)")
	sys, err := eba.NewSystem(eba.Params{N: 3, T: 1}, eba.Omission, 3, 0)
	if err != nil {
		log.Fatal(err)
	}
	e := eba.NewEvaluator(sys)
	chain := eba.Chain0SemanticPair(e)
	if err := eba.CheckEBA(sys, chain); err != nil {
		log.Fatal(err)
	}
	max, _ := eba.MaxNonfaultyDecisionRound(sys, chain)
	fmt.Printf("FIP(Z0,O0): EBA holds; worst-case decision round %d (t+1 = 2)\n", max)

	fstar := eba.PrimeStep(e, chain, "F*")
	ok, reason := eba.IsOptimal(e, fstar)
	fmt.Printf("F* dominates the chain protocol: %v; optimal: %v %s\n",
		eba.Dominates(sys, fstar, chain), ok, reason)

	// And the cautionary tale: P0's naive rule violates agreement
	// under omissions.
	if err := eba.CheckWeakAgreement(sys, eba.P0Pair(1)); err != nil {
		fmt.Printf("P0 under omissions: %v\n", err)
	}
}
