// Knowledgelab is a playground for the paper's epistemic logic: it
// builds a small crash-mode system and walks through the knowledge
// states that drive the theory — what a processor knows, when facts
// become common knowledge, why eventual common knowledge is the wrong
// tool, and what continual common knowledge (C□) adds.
package main

import (
	"fmt"
	"log"

	eba "github.com/eventual-agreement/eba"
)

func main() {
	const n, t, h = 3, 1, 3
	sys, err := eba.NewSystem(eba.Params{N: n, T: t}, eba.Crash, h, 0)
	if err != nil {
		log.Fatal(err)
	}
	e := eba.NewEvaluator(sys)
	nf := eba.Nonfaulty()

	// Pick the failure-free run with configuration 011.
	ff := eba.FailureFree(eba.Crash, n, h)
	run, ok := sys.FindRun(eba.ConfigFromBits(n, 0b110), ff.Key())
	if !ok {
		log.Fatal("run not found")
	}
	fmt.Printf("run: config %s, failure-free, horizon %d\n\n", run.Config, h)

	// Knowledge of ∃0 spreads in one round.
	for m := eba.Round(0); m <= 1; m++ {
		pt := eba.Point{Run: run.Index, Time: m}
		fmt.Printf("time %d:\n", m)
		for i := eba.ProcID(0); i < n; i++ {
			fmt.Printf("  K_%d ∃0 = %-5v   view: %s\n",
				i, e.Holds(eba.K(i, eba.Exists0()), pt),
				sys.Interner.String(sys.ViewAt(pt, i)))
		}
	}

	// Common knowledge needs t+1 rounds; continual common knowledge
	// of ∃0 is unattainable (reachability escapes through time 0).
	fmt.Println("\ncommon knowledge of ∃0 along the run:")
	for m := eba.Round(0); m <= h; m++ {
		pt := eba.Point{Run: run.Index, Time: m}
		fmt.Printf("  t=%d: E_𝒩 ∃0 = %-5v  C_𝒩 ∃0 = %-5v  C□_𝒩 ∃0 = %v\n",
			m,
			e.Holds(eba.E(nf, eba.Exists0()), pt),
			e.Holds(eba.C(nf, eba.Exists0()), pt),
			e.Holds(eba.CBox(nf, eba.Exists0()), pt))
	}

	// The implication C□ ⇒ C is valid; the converse is not.
	fmt.Println("\noperator strength (valid in the whole system?):")
	fmt.Printf("  C□ ⇒ C : %v\n", e.Valid(eba.Implies(eba.CBox(nf, eba.Exists0()), eba.C(nf, eba.Exists0()))))
	fmt.Printf("  C ⇒ C□ : %v\n", e.Valid(eba.Implies(eba.C(nf, eba.Exists0()), eba.CBox(nf, eba.Exists0()))))

	// Where C□ really matters: relative to the nonrigid set
	// 𝒩 ∧ 𝒪 of a decision pair. For the optimal pair, the paper's
	// Theorem 5.3 conditions hold; we show one instance concretely.
	opt := eba.TwoStep(e, eba.NeverDecide())
	nAndO := eba.NAnd(opt.O)
	cond := eba.Implies(
		eba.B(0, nf, eba.And(eba.Exists0(), eba.CBox(nAndO, eba.Exists0()))),
		eba.K(0, eba.Or(eba.Exists0(), eba.Exists1())), // trivially true consequence
	)
	fmt.Printf("\nsample Theorem 5.3-style formula valid: %v\n", e.Valid(cond))
	ok5, _ := eba.IsOptimal(e, opt)
	fmt.Printf("TwoStep(FΛ) passes the full Theorem 5.3 oracle: %v\n", ok5)

	// Decision sets as knowledge: where does the optimum decide?
	fmt.Println("\ndecisions of the optimum along the run:")
	for m := eba.Round(0); m <= h; m++ {
		for i := eba.ProcID(0); i < n; i++ {
			if v, at, ok := eba.DecisionAt(sys, opt, run, i); ok && at == m {
				fmt.Printf("  proc %d decides %s at time %d\n", i, v, at)
			}
		}
	}
}
