// Byzantinebound demonstrates the origin of the Byzantine agreement
// problem ([PSL80] in the paper's introduction): the oral-messages
// protocol EIGByz withstands arbitrary lying when n > 3t, and a
// two-faced traitor splits three processors (n = 3t).
package main

import (
	"fmt"
	"log"

	eba "github.com/eventual-agreement/eba"
)

func main() {
	// n = 4, t = 1: processor 3 lies two-facedly; the three honest
	// processors still agree.
	fmt.Println("-- n = 4, t = 1 (n > 3t): the traitor fails")
	adv := eba.TwoFacedAdversary(2, eba.Zero, eba.One)
	proto := eba.EIGByz(1, eba.ProcSet(1)<<3, adv)
	tr, err := eba.Run(proto, eba.Params{N: 4, T: 1},
		eba.ConfigFromBits(4, 0b0111), eba.FailureFree(eba.Omission, 4, 2))
	if err != nil {
		log.Fatal(err)
	}
	for p := eba.ProcID(0); p < 3; p++ {
		v, at, _ := tr.DecisionOf(p)
		fmt.Printf("  honest %d decides %s at time %d\n", p, v, at)
	}

	// n = 3, t = 1: the same strategy splits the two honest
	// processors — the classic impossibility. Traitor 0 tells
	// processor 1 "zero" and processor 2 "one" while the honest
	// processors both hold 1.
	fmt.Println("-- n = 3, t = 1 (n = 3t): the traitor wins")
	advSplit := eba.TwoFacedAdversary(2, eba.Zero, eba.One)
	protoSplit := eba.EIGByz(1, eba.ProcSet(1)<<0, advSplit) // processor 0 is the traitor
	tr, err = eba.Run(protoSplit, eba.Params{N: 3, T: 1},
		eba.ConfigFromBits(3, 0b110), eba.FailureFree(eba.Omission, 3, 2))
	if err != nil {
		log.Fatal(err)
	}
	v1, _, _ := tr.DecisionOf(1)
	v2, _, _ := tr.DecisionOf(2)
	status := "agree"
	if v1 != v2 {
		status = "DISAGREE"
	}
	fmt.Printf("  honest 1 decides %s, honest 2 decides %s  (%s)\n", v1, v2, status)
}
