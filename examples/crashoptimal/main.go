// Crashoptimal reproduces the crash-mode narrative of Sections 2 and
// 6.1: P0 and P1 are incomparable (no optimum exists), P0opt strictly
// dominates P0 while staying optimal, and the knowledge-level
// two-step construction lands exactly on P0opt.
package main

import (
	"fmt"
	"log"
	"sort"

	eba "github.com/eventual-agreement/eba"
)

func main() {
	const n, t, h = 4, 1, 3
	params := eba.Params{N: n, T: t}
	sys, err := eba.NewSystem(params, eba.Crash, h, 0)
	if err != nil {
		log.Fatal(err)
	}
	e := eba.NewEvaluator(sys)

	p0 := eba.P0Pair(t)
	p1 := eba.P1Pair(t)
	p0opt := eba.P0OptPair()

	// Proposition 2.1: neither of the biased protocols dominates the
	// other, so no protocol can dominate both.
	fmt.Println("-- Proposition 2.1: no optimum EBA protocol")
	fmt.Printf("P0 dominates P1: %v\n", eba.Dominates(sys, p0, p1))
	fmt.Printf("P1 dominates P0: %v\n", eba.Dominates(sys, p1, p0))

	// Section 2.2: P0opt strictly dominates P0; the decision-round
	// histogram shows where the rounds are saved.
	fmt.Println("\n-- Section 2.2: P0opt strictly dominates P0")
	fmt.Printf("strict domination: %v\n", eba.StrictlyDominates(sys, p0opt, p0))
	printHist := func(name string, hist map[eba.Round]int) {
		times := make([]int, 0, len(hist))
		for at := range hist {
			times = append(times, int(at))
		}
		sort.Ints(times)
		fmt.Printf("%-8s", name)
		for _, at := range times {
			fmt.Printf(" t=%d:%d", at, hist[eba.Round(at)])
		}
		fmt.Println()
	}
	printHist("P0", eba.DecisionHistogram(sys, p0))
	printHist("P0opt", eba.DecisionHistogram(sys, p0opt))

	// Theorem 5.3 as an oracle: P0 fails the characterization, P0opt
	// passes it.
	fmt.Println("\n-- Theorem 5.3: the optimality characterization")
	for _, pr := range []struct {
		name string
		pair eba.Pair
	}{{"P0", p0}, {"P1", p1}, {"P0opt", p0opt}} {
		ok, reason := eba.IsOptimal(e, pr.pair)
		if ok {
			fmt.Printf("%-6s optimal\n", pr.name)
		} else {
			fmt.Printf("%-6s not optimal: %s\n", pr.name, reason)
		}
	}

	// Theorems 6.1/6.2: the construction from F^Λ is P0opt.
	fmt.Println("\n-- Theorems 6.1/6.2: TwoStep(FΛ) ≡ P0opt")
	opt := eba.TwoStep(e, eba.NeverDecide())
	equal, diff := eba.EqualOnNonfaulty(sys, opt, p0opt)
	fmt.Printf("pointwise equal at nonfaulty states: %v %s\n", equal, diff)
	max, _ := eba.MaxNonfaultyDecisionRound(sys, opt)
	fmt.Printf("worst-case decision round: %d (= t+1)\n", max)
}
