// Quickstart: derive the optimal crash-mode EBA protocol from the
// protocol that never decides, verify it with the paper's oracles,
// and run its concrete equivalent (P0opt) on the live goroutine
// runtime under an injected crash.
package main

import (
	"fmt"
	"log"

	eba "github.com/eventual-agreement/eba"
)

func main() {
	params := eba.Params{N: 4, T: 1}

	// 1. Enumerate every run of the full-information protocol for
	//    n=4, t=1, three rounds, crash failures.
	sys, err := eba.NewSystem(params, eba.Crash, 3, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("system: %d runs, %d points\n", sys.NumRuns(), sys.NumPoints())

	// 2. Apply the paper's two-step construction (Theorem 5.2) to the
	//    protocol in which nobody ever decides.
	e := eba.NewEvaluator(sys)
	opt := eba.TwoStep(e, eba.NeverDecide())

	// 3. Verify: it is an EBA protocol, it is optimal (Theorem 5.3),
	//    and it equals the concrete P0opt at nonfaulty states
	//    (Theorem 6.2).
	if err := eba.CheckEBA(sys, opt); err != nil {
		log.Fatal(err)
	}
	if ok, reason := eba.IsOptimal(e, opt); !ok {
		log.Fatal(reason)
	}
	if equal, diff := eba.EqualOnNonfaulty(sys, opt, eba.P0OptPair()); !equal {
		log.Fatal(diff)
	}
	fmt.Println("TwoStep(FΛ) is optimal EBA and equals P0opt (Theorems 6.1/6.2)")

	// 4. Run the concrete P0opt live: goroutines, channels, and a
	//    crash of processor 0 in round 2.
	cfg := eba.ConfigFromBits(4, 0b1110) // processor 0 holds the only 0
	pat := eba.Silent(eba.Crash, 4, 3, 0, 2)
	tr, err := eba.RunLive(eba.P0Opt(), params, cfg, pat)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("live run, config %s, %s:\n", cfg, pat)
	for _, d := range tr.Decisions() {
		fmt.Println(" ", d)
	}
}
