// Sbawaste contrasts eventual with simultaneous agreement (the
// motivation of the paper's introduction): the optimal SBA rule —
// common knowledge, equivalently the DM90 waste count — always waits
// for time t+1−W, while the optimal EBA protocol's first deciders
// race ahead.
package main

import (
	"fmt"
	"log"

	eba "github.com/eventual-agreement/eba"
)

func main() {
	params := eba.Params{N: 4, T: 2}
	sys, err := eba.NewSystem(params, eba.Crash, 4, 0)
	if err != nil {
		log.Fatal(err)
	}
	e := eba.NewEvaluator(sys)
	sbaOuts := eba.SBAOutcomes(e)
	p0opt := eba.P0OptPair()

	show := func(title string, cfgBits uint64, pat *eba.Pattern) {
		run, ok := sys.FindRun(eba.ConfigFromBits(4, cfgBits), pat.Key())
		if !ok {
			log.Fatalf("%s: run not found", title)
		}
		out := sbaOuts[run.Index]
		fmt.Printf("-- %s\n   SBA: everyone decides %s at time %d\n", title, out.Value, out.Time)
		fmt.Printf("   EBA (P0opt):")
		for p := eba.ProcID(0); p < 4; p++ {
			if !run.Nonfaulty().Contains(p) {
				continue
			}
			if v, at, ok := eba.DecisionAt(sys, p0opt, run, p); ok {
				fmt.Printf("  proc %d: %s@%d", p, v, at)
			}
		}
		fmt.Println()
	}

	show("failure-free, all ones (SBA waits t+1 = 3)",
		0b1111, eba.FailureFree(eba.Crash, 4, 4))

	// Two crashes fully visible in round 1: waste W = 1 buys the SBA
	// rule a decision at time 2.
	doubleCrash, err := eba.NewPattern(eba.Crash, 4, 4, eba.ProcSet(0b1100), map[eba.ProcID]*eba.Behavior{
		2: {Omit: silences(4, 2)},
		3: {Omit: silences(4, 3)},
	})
	if err != nil {
		log.Fatal(err)
	}
	show("double round-1 crash (waste: SBA decides at t+1−1 = 2)", 0b1111, doubleCrash)

	show("a zero on board (EBA deciders at time 0, SBA still waits)",
		0b1110, eba.FailureFree(eba.Crash, 4, 4))
}

// silences builds a from-round-1 silence schedule for processor p.
func silences(h int, p eba.ProcID) []eba.ProcSet {
	others := eba.ProcSet(0)
	for q := eba.ProcID(0); q < 4; q++ {
		if q != p {
			others = others.Add(q)
		}
	}
	out := make([]eba.ProcSet, h)
	for r := range out {
		out[r] = others
	}
	return out
}
