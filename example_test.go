package eba_test

import (
	"fmt"

	eba "github.com/eventual-agreement/eba"
)

// ExampleTwoStep derives the optimal crash-mode protocol from the
// never-deciding one and verifies it with the Theorem 5.3 oracle.
func ExampleTwoStep() {
	sys, err := eba.NewSystem(eba.Params{N: 3, T: 1}, eba.Crash, 3, 0)
	if err != nil {
		fmt.Println(err)
		return
	}
	e := eba.NewEvaluator(sys)
	opt := eba.TwoStep(e, eba.NeverDecide())
	ok, _ := eba.IsOptimal(e, opt)
	equal, _ := eba.EqualOnNonfaulty(sys, opt, eba.P0OptPair())
	fmt.Println("optimal:", ok)
	fmt.Println("equals P0opt:", equal)
	// Output:
	// optimal: true
	// equals P0opt: true
}

// ExampleRunLive runs the concrete P0opt protocol on the goroutine
// runtime under an injected crash.
func ExampleRunLive() {
	params := eba.Params{N: 3, T: 1}
	cfg := eba.ConfigFromBits(3, 0b110) // processor 0 holds the only 0
	pat := eba.Silent(eba.Crash, 3, 3, 2, 2)
	tr, err := eba.RunLive(eba.P0Opt(), params, cfg, pat)
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, d := range tr.Decisions() {
		fmt.Println(d)
	}
	// Output:
	// proc 0 decides 0 at time 0
	// proc 1 decides 0 at time 1
	// proc 2 decides 0 at time 1
}

// ExampleCBox evaluates continual common knowledge — the paper's new
// operator — and contrasts it with ordinary common knowledge.
func ExampleCBox() {
	sys, err := eba.NewSystem(eba.Params{N: 3, T: 1}, eba.Crash, 2, 0)
	if err != nil {
		fmt.Println(err)
		return
	}
	e := eba.NewEvaluator(sys)
	nf := eba.Nonfaulty()
	fmt.Println("C□ ⇒ C valid:", e.Valid(eba.Implies(eba.CBox(nf, eba.Exists1()), eba.C(nf, eba.Exists1()))))
	fmt.Println("C ⇒ C□ valid:", e.Valid(eba.Implies(eba.C(nf, eba.Exists1()), eba.CBox(nf, eba.Exists1()))))
	// Output:
	// C□ ⇒ C valid: true
	// C ⇒ C□ valid: false
}

// ExampleEIGByz demonstrates the PSL80 oral-messages baseline: a
// two-faced traitor cannot split four processors (n > 3t).
func ExampleEIGByz() {
	params := eba.Params{N: 4, T: 1}
	adv := eba.TwoFacedAdversary(2, eba.Zero, eba.One)
	proto := eba.EIGByz(1, eba.ProcSet(1)<<3, adv) // processor 3 is the traitor
	cfg := eba.ConfigFromBits(4, 0b0111)
	tr, err := eba.Run(proto, params, cfg, eba.FailureFree(eba.Omission, 4, 2))
	if err != nil {
		fmt.Println(err)
		return
	}
	for p := eba.ProcID(0); p < 3; p++ {
		v, _, _ := tr.DecisionOf(p)
		fmt.Printf("honest %d decides %s\n", p, v)
	}
	// Output:
	// honest 0 decides 1
	// honest 1 decides 1
	// honest 2 decides 1
}
